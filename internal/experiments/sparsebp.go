package experiments

import (
	"context"
	"fmt"
	"time"

	"etalstm/internal/core"
	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/rng"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

// SparseBP measures what the pair-driven sparse backward kernels buy at
// each MS1 pruning threshold: the wall time of the BP-EW-P2 + BP-MatMul
// phases dense versus sparse on identical pruned operands, the measured
// prune ratio those kernels skip, and the final loss against the
// unpruned dense run — the software counterpart of the paper's Omni-PE
// gather exploiting the (value, index) pair store.
func SparseBP(opts Options) (*Report, error) {
	bench, epochs, batches := sparseBPScale(opts)
	rep := &Report{
		ID: "sparsebp", Title: "Sparse backward kernels: BP phase time vs prune ratio",
		Header: []string{"threshold", "prune", "dense BP (ms)", "sparse BP (ms)", "speedup", "final loss", "Δ vs dense"},
	}

	run := func(sparse bool, th float32) (loss, prune float64, bp time.Duration, err error) {
		net, err := model.NewNetwork(bench.Cfg, rng.New(opts.Seed))
		if err != nil {
			return 0, 0, 0, err
		}
		tr := core.New(net, &train.Adam{LR: 0.01}, 5, core.Config{
			EnableMS1: true, PruneThreshold: th, SparseBackward: sparse,
		})
		tr.Workers = 1 // serial: one workspace, clean phase timings
		tr.RecordPhases = true
		prov := bench.Provider(batches, opts.Seed)
		for e := 0; e < epochs; e++ {
			st, rerr := tr.RunEpoch(context.Background(), prov, e)
			if rerr != nil {
				return 0, 0, 0, rerr
			}
			loss, prune = st.MeanLoss, st.PruneStats.Frac()
		}
		for _, ps := range tr.Phases() {
			if ps.Phase == obs.PhaseBPEWP2.String() || ps.Phase == obs.PhaseBPMatMul.String() {
				bp += ps.Total
			}
		}
		return loss, prune, bp, nil
	}

	baseLoss, _, _, err := run(false, 0.001) // effectively unpruned dense reference
	if err != nil {
		return nil, err
	}
	for _, th := range []float32{0.001, 0.05, 0.1, 0.3} {
		denseLoss, prune, denseBP, err := run(false, th)
		if err != nil {
			return nil, err
		}
		sparseLoss, _, sparseBP, err := run(true, th)
		if err != nil {
			return nil, err
		}
		if sparseLoss != denseLoss {
			// The sparse kernels skip only exact-zero operands, so the
			// trajectories — and losses — must agree bitwise.
			return nil, fmt.Errorf("sparsebp: loss diverged at threshold %g: dense %v, sparse %v", th, denseLoss, sparseLoss)
		}
		speedup := "-"
		if sparseBP > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(denseBP)/float64(sparseBP))
		}
		rep.Add(fmt.Sprintf("%.3f", th), fmt.Sprintf("%.2f", prune),
			fmt.Sprintf("%.1f", float64(denseBP)/1e6),
			fmt.Sprintf("%.1f", float64(sparseBP)/1e6),
			speedup,
			fmt.Sprintf("%.4f", sparseLoss),
			fmt.Sprintf("%+.4f", sparseLoss-baseLoss))
	}
	rep.Note("sparse and dense BP consume the same pruned P1 pairs, so each row's loss is bitwise identical — the speedup is free")
	rep.Note("BP-EW-P2/BP-MatMul time falls roughly in proportion to the prune ratio; reproduce interactively with etabench -phases -sparse")
	return rep, nil
}

func sparseBPScale(opts Options) (workload.Benchmark, int, int) {
	b, _ := workload.ByName("IMDB")
	if opts.Quick {
		return b.Scaled(32, 12, 8), 3, 4
	}
	return b.Scaled(8, 24, 16), 5, 8
}
