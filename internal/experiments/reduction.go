package experiments

import (
	"etalstm/internal/arch"
	"etalstm/internal/memplan"
	"etalstm/internal/stats"
	"etalstm/internal/trace"
	"etalstm/internal/workload"
)

// Fig17 regenerates Fig. 17: data-movement reduction for weight
// matrices, activation data and intermediate variables under MS1, MS2
// and the full η-LSTM on each benchmark.
func Fig17(Options) (*Report, error) {
	rep := &Report{
		ID: "fig17", Title: "Data-movement reduction vs baseline (fraction removed)",
		Header: []string{"benchmark", "mode", "weights", "activations", "intermediates"},
	}
	agg := map[string][]float64{}
	for _, b := range workload.Suite() {
		p := arch.DefaultOptParams(b.Cfg)
		base := trace.Baseline(b.Cfg)
		cases := []struct {
			name string
			mov  trace.Movement
		}{
			{"MS1", trace.WithMS1(b.Cfg, p.P1Sparsity)},
			{"MS2", trace.WithMS2(b.Cfg, p.SkipFrac)},
			{"eta-LSTM", trace.Combined(b.Cfg, p.P1Sparsity, p.SkipFrac)},
		}
		for _, c := range cases {
			r := trace.ReductionVs(base, c.mov)
			rep.Add(b.Name, c.name, r.Weights, r.Activations, r.Intermediates)
			agg[c.name+"/w"] = append(agg[c.name+"/w"], r.Weights)
			agg[c.name+"/a"] = append(agg[c.name+"/a"], r.Activations)
			agg[c.name+"/i"] = append(agg[c.name+"/i"], r.Intermediates)
		}
	}
	rep.Note("paper MS1 averages: weights -31.79%%, intermediates -60.27%%, activations unchanged; measured: w %.1f%%, i %.1f%%",
		100*stats.Mean(agg["MS1/w"]), 100*stats.Mean(agg["MS1/i"]))
	rep.Note("paper MS2 averages: weights -24.67%%, activations -32.89%%, intermediates -49.34%%; measured: w %.1f%%, a %.1f%%, i %.1f%%",
		100*stats.Mean(agg["MS2/w"]), 100*stats.Mean(agg["MS2/a"]), 100*stats.Mean(agg["MS2/i"]))
	rep.Note("paper eta-LSTM averages: weights -40.85%%, activations -32.89%%, intermediates -80.04%%; measured: w %.1f%%, a %.1f%%, i %.1f%%",
		100*stats.Mean(agg["eta-LSTM/w"]), 100*stats.Mean(agg["eta-LSTM/a"]), 100*stats.Mean(agg["eta-LSTM/i"]))
	return rep, nil
}

// Fig18 regenerates Fig. 18: memory-footprint reduction under MS1 and
// MS2 (the paper plots IMDB, WAYMO and BABI; we add the full suite and
// the combined mode).
func Fig18(Options) (*Report, error) {
	rep := &Report{
		ID: "fig18", Title: "Normalized memory footprint (baseline = 1.0)",
		Header: []string{"benchmark", "Baseline", "MS1", "MS2", "Combine-MS"},
	}
	var ms1R, ms2R, combR []float64
	for _, b := range workload.Suite() {
		p := memplan.Params{
			P1KeepRatio: memplan.FromSparsity(0.65),
			SkipFrac:    arch.SkipFracFor(b.Cfg),
		}
		base := float64(memplan.Footprint(b.Cfg, memplan.Baseline, p).Total())
		ms1 := float64(memplan.Footprint(b.Cfg, memplan.MS1, p).Total()) / base
		ms2 := float64(memplan.Footprint(b.Cfg, memplan.MS2, p).Total()) / base
		comb := float64(memplan.Footprint(b.Cfg, memplan.Combined, p).Total()) / base
		ms1R = append(ms1R, 1-ms1)
		ms2R = append(ms2R, 1-ms2)
		combR = append(combR, 1-comb)
		rep.Add(b.Name, 1.0, ms1, ms2, comb)
	}
	rep.Note("paper averages: MS1 -32.37%% (up to 39.09%%), MS2 -41.65%% (up to 61.68%%), combined -57.52%% (up to 75.75%%)")
	rep.Note("measured averages: MS1 -%.1f%%, MS2 -%.1f%%, combined -%.1f%% (max -%.1f%%)",
		100*stats.Mean(ms1R), 100*stats.Mean(ms2R), 100*stats.Mean(combR), 100*maxOf(combR))
	return rep, nil
}
