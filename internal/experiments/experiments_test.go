package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"etalstm/internal/stats"
)

func run(t *testing.T, r Runner) *Report {
	t.Helper()
	rep, err := r(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID == "" || rep.Title == "" || len(rep.Header) == 0 || len(rep.Rows) == 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	for i, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("row %d has %d cells, header %d", i, len(row), len(rep.Header))
		}
	}
	return rep
}

func cell(t *testing.T, rep *Report, rowLabel, col string) string {
	t.Helper()
	ci := -1
	for i, h := range rep.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", col, rep.Header)
	}
	for _, row := range rep.Rows {
		if row[0] == rowLabel {
			return row[ci]
		}
	}
	t.Fatalf("no row %q", rowLabel)
	return ""
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig3Reports(t *testing.T) {
	a := run(t, Fig3a)
	if len(a.Rows) != 5 {
		t.Fatalf("fig3a rows: %d", len(a.Rows))
	}
	b := run(t, Fig3b)
	// LN7/LN8 must print OOM for the RTX 5000.
	if cell(t, b, "LN7", "RTX TFLOPS") != "OOM" || cell(t, b, "LN8", "RTX TFLOPS") != "OOM" {
		t.Fatal("fig3b must mark LN7/LN8 OOM on the RTX 5000")
	}
	if cell(t, b, "LN6", "RTX TFLOPS") == "OOM" {
		t.Fatal("LN6 must train on the RTX 5000")
	}
	c := run(t, Fig3c)
	first := parse(t, cell(t, c, "LL18", "V100 TFLOPS"))
	last := parse(t, cell(t, c, "LL303", "V100 TFLOPS"))
	if last >= first {
		t.Fatal("fig3c: throughput must decline with layer length")
	}
}

func TestFig4Report(t *testing.T) {
	rep := run(t, Fig4)
	if len(rep.Rows) != 18 { // 17 configs + average
		t.Fatalf("fig4 rows: %d", len(rep.Rows))
	}
	avg := parse(t, cell(t, rep, "Ave", "interm/act"))
	if avg < 2.5 || avg > 5.5 {
		t.Fatalf("fig4 average ratio %.2f outside the Fig. 4 regime (~4.3)", avg)
	}
}

func TestFig5Report(t *testing.T) {
	rep := run(t, Fig5)
	ll303 := parse(t, cell(t, rep, "LL303", "intermediate"))
	if ll303 < 0.6 || ll303 > 0.85 {
		t.Fatalf("fig5 LL303 intermediate frac %.3f (paper max 74.01%%)", ll303)
	}
	h256 := parse(t, cell(t, rep, "H256", "intermediate"))
	if ll303 <= h256 {
		t.Fatal("intermediate share must grow with layer length")
	}
}

func TestFig6Report(t *testing.T) {
	rep := run(t, Fig6)
	// Every sampled epoch must show P1 more compressible than the raw
	// intermediates at the 0.1 threshold.
	var rawVals, p1Vals []float64
	for _, row := range rep.Rows {
		v := parse(t, row[3]) // P(|v|<0.1)
		if row[1] == "FW-intermediates" {
			rawVals = append(rawVals, v)
		} else {
			p1Vals = append(p1Vals, v)
		}
	}
	if len(rawVals) == 0 || len(rawVals) != len(p1Vals) {
		t.Fatalf("fig6 populations: %d/%d", len(rawVals), len(p1Vals))
	}
	for i := range rawVals {
		if p1Vals[i] <= rawVals[i] {
			t.Fatalf("epoch sample %d: P1 below-0.1 %.3f must exceed raw %.3f",
				i, p1Vals[i], rawVals[i])
		}
	}
	if stats.Mean(p1Vals) < 1.8*stats.Mean(rawVals) {
		t.Fatalf("P1 compressibility advantage too small: %.3f vs %.3f",
			stats.Mean(p1Vals), stats.Mean(rawVals))
	}
}

func TestFig8Report(t *testing.T) {
	rep := run(t, Fig8)
	trendOf := func(bench, layer string) string {
		for _, row := range rep.Rows {
			if row[0] == bench && row[1] == layer {
				return row[5]
			}
		}
		t.Fatalf("no row %s/%s", bench, layer)
		return ""
	}
	// IMDB (single loss): the loss-adjacent (top) layer decays from the
	// last timestamp backwards — magnitude increases with t.
	if got := trendOf("IMDB", "2"); got != "increasing with t" {
		t.Fatalf("IMDB top layer trend %q", got)
	}
	// WMT (per-timestamp loss): the first layer accumulates loss toward
	// the first cell — magnitude decreases with t.
	if got := trendOf("WMT", "0"); got != "decreasing with t" {
		t.Fatalf("WMT layer 0 trend %q", got)
	}
}

func TestFig11Report(t *testing.T) {
	rep := run(t, Fig11)
	if cell(t, rep, "8 (Fig.11 chart)", "total cycles") != "12" {
		t.Fatal("fig11: the 8-value chart must complete at cycle 12")
	}
	ov := parse(t, cell(t, rep, "1024", "overhead"))
	if ov >= 2.87 {
		t.Fatalf("fig11: 1024-input overhead %.2f%% >= 2.87%%", ov)
	}
}

func TestFig15Reports(t *testing.T) {
	a := run(t, Fig15a)
	eta := parse(t, cell(t, a, "Ave", "EtaLSTM"))
	if eta < 2.5 || eta > 4.5 {
		t.Fatalf("fig15a: η-LSTM average speedup %.2f (paper 3.99)", eta)
	}
	combine := parse(t, cell(t, a, "Ave", "Combine-MS"))
	if combine < 1.3 || combine > 1.9 {
		t.Fatalf("fig15a: Combine-MS average %.2f (paper 1.56)", combine)
	}
	b := run(t, Fig15b)
	etaE := parse(t, cell(t, b, "Ave", "EtaLSTM"))
	if etaE < 0.2 || etaE > 0.6 {
		t.Fatalf("fig15b: η-LSTM average energy %.2f (paper 0.363)", etaE)
	}
}

func TestFig16Report(t *testing.T) {
	rep := run(t, Fig16)
	for _, row := range rep.Rows {
		dyn := parse(t, row[4])
		if dyn <= 1 {
			t.Fatalf("%s: Dyn-Arch energy efficiency %.2f must beat baseline", row[0], dyn)
		}
	}
}

func TestFig17Report(t *testing.T) {
	rep := run(t, Fig17)
	// η-LSTM's intermediate-movement reduction must be the strongest
	// of its three categories on every benchmark (paper: −80 % vs
	// −41 %/−33 %).
	for _, row := range rep.Rows {
		if row[1] != "eta-LSTM" {
			continue
		}
		w, a, i := parse(t, row[2]), parse(t, row[3]), parse(t, row[4])
		// On TREC-10 (LL18) nothing is skippable, so MS1's weight and
		// intermediate reductions nearly tie; allow that margin.
		if i <= a || i < w-0.01 {
			t.Fatalf("%s: intermediates %.3f must dominate (w %.3f, a %.3f)", row[0], i, w, a)
		}
	}
}

func TestFig18Report(t *testing.T) {
	rep := run(t, Fig18)
	for _, row := range rep.Rows {
		ms1 := parse(t, row[2])
		comb := parse(t, row[4])
		// Equality is legitimate where MS2 finds nothing to skip
		// (TREC-10's 18-step layers).
		if comb > ms1 {
			t.Fatalf("%s: combined footprint %.3f must not exceed MS1's %.3f", row[0], comb, ms1)
		}
		if comb <= 0 || comb >= 1 {
			t.Fatalf("%s: combined normalized footprint %.3f", row[0], comb)
		}
	}
}

func TestTable2Report(t *testing.T) {
	rep := run(t, Table2)
	if len(rep.Rows) != 6 {
		t.Fatalf("table2 rows: %d", len(rep.Rows))
	}
	// Losses/metrics must be finite for every benchmark.
	for _, row := range rep.Rows {
		if row[2] == "n/a" || row[3] == "n/a" {
			t.Fatalf("%s: metric not computable", row[0])
		}
	}
}

func TestTable3Report(t *testing.T) {
	rep := run(t, Table3)
	if cell(t, rep, "Xilinx IP", "LUT") != "821" || cell(t, rep, "Our Design", "LUT") != "463" {
		t.Fatal("table3 LUT cells")
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig11", "fig15a", "fig15b", "fig16", "fig17", "fig18",
		"fig3a", "fig3b", "fig3c", "fig4", "fig5", "fig6", "fig8", "gradsync",
		"scalability", "sparsebp", "table2", "table3"}
	if len(ids) != len(want) {
		t.Fatalf("registry: %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry ids: %v", ids)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	rep.Add("1", "2")
	rep.Note("hello %d", 7)
	s := rep.String()
	if !strings.Contains(s, "== x: t ==") || !strings.Contains(s, "note: hello 7") {
		t.Fatalf("render: %s", s)
	}
}

// TestSparseBPReport pins the sparse-backward experiment's structural
// invariants: one row per threshold rung, the measured prune ratio
// monotone non-decreasing in the threshold, every speedup cell
// parseable, and the unpruned-vs-dense loss delta column present. The
// loss-bitwise contract between sparse and dense is enforced inside the
// runner itself (it errors on any divergence).
func TestSparseBPReport(t *testing.T) {
	rep := run(t, SparseBP)
	if len(rep.Rows) != 4 {
		t.Fatalf("want 4 threshold rungs, got %v", rep.Rows)
	}
	prev := -1.0
	for _, row := range rep.Rows {
		var prune float64
		if _, err := fmt.Sscanf(row[1], "%f", &prune); err != nil {
			t.Fatalf("prune cell %q: %v", row[1], err)
		}
		if prune < prev {
			t.Fatalf("prune ratio not monotone in threshold: %v", rep.Rows)
		}
		prev = prune
		var speedup float64
		if _, err := fmt.Sscanf(row[4], "%fx", &speedup); err != nil {
			t.Fatalf("speedup cell %q: %v", row[4], err)
		}
		if speedup <= 0 {
			t.Fatalf("non-positive speedup: %v", row)
		}
	}
}

func TestGradSyncReport(t *testing.T) {
	rep := run(t, GradSync)
	if rep.Rows[0][0] != "dense" {
		t.Fatalf("first row must be the dense baseline: %v", rep.Rows[0])
	}
	// Every compressed rung must report a real payload reduction, and
	// tighter keeps must never ship more bytes.
	prev := 0.0
	for _, row := range rep.Rows[1:] {
		var ratio float64
		if _, err := fmt.Sscanf(row[4], "%fx", &ratio); err != nil {
			t.Fatalf("ratio cell %q: %v", row[4], err)
		}
		if ratio <= 1 {
			t.Fatalf("rung %v reports no reduction", row)
		}
		if ratio < prev {
			t.Fatalf("ratio not monotone in keep: %v", rep.Rows)
		}
		prev = ratio
	}
}
