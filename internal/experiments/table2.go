package experiments

import (
	"context"
	"fmt"
	"math"

	"etalstm/internal/core"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

// Table2 regenerates Table II: the task metric of every benchmark under
// baseline training versus Combined-MS training (same data, same seeds,
// same epochs). The paper reports < 1 % metric difference; our
// reproduction trains the synthetic tasks at reduced scale and reports
// the same relative comparison.
func Table2(opts Options) (*Report, error) {
	rep := &Report{
		ID: "table2", Title: "Accuracy impact of the memory-saving optimizations",
		Header: []string{"benchmark", "metric", "Baseline", "Combined-MS", "delta"},
	}
	for _, b := range workload.Suite() {
		bench, epochs, batches := table2Scale(b, opts)
		evalProv := bench.Provider(6, opts.Seed+1000)

		baseVal, err := table2Run(bench, core.Config{}, epochs, batches, opts.Seed, evalProv)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", b.Name, err)
		}
		optVal, err := table2Run(bench, core.Config{EnableMS1: true, EnableMS2: true},
			epochs, batches, opts.Seed, evalProv)
		if err != nil {
			return nil, fmt.Errorf("%s combined: %w", b.Name, err)
		}
		metric := table2Metric(bench)
		rep.Add(b.Name, metric,
			table2Format(bench, baseVal), table2Format(bench, optVal),
			fmt.Sprintf("%+.3f", optVal-baseVal))
	}
	rep.Note("paper: <1%% accuracy difference on every benchmark, no convergence-speed impact")
	rep.Note("metrics at reproduction scale (synthetic tasks, scaled models); compare Baseline vs Combined-MS relatively, not against the paper's absolute corpus numbers")
	return rep, nil
}

func table2Scale(b workload.Benchmark, opts Options) (workload.Benchmark, int, int) {
	if opts.Quick {
		return b.Scaled(64, 12, 8), 12, 4
	}
	return b.Scaled(16, 30, 16), 20, 6
}

// table2Run trains bench under cfg and evaluates the task metric.
func table2Run(bench workload.Benchmark, cfg core.Config, epochs, batches int, seed uint64, eval train.Provider) (float64, error) {
	prov := bench.Provider(batches, seed)
	net, err := model.NewNetwork(bench.Cfg, rng.New(seed))
	if err != nil {
		return 0, err
	}
	tr := core.New(net, &train.Adam{LR: 0.01}, 5, cfg)
	if _, err := tr.Run(context.Background(), prov, epochs); err != nil {
		return 0, err
	}
	return table2Evaluate(bench, net, eval)
}

// table2Evaluate computes the benchmark's Table II metric.
func table2Evaluate(bench workload.Benchmark, net *model.Network, eval train.Provider) (float64, error) {
	switch bench.Task {
	case workload.QuestionClassification, workload.SentimentAnalysis, workload.QuestionAnswering:
		_, acc, err := train.Evaluate(net, eval)
		return 100 * acc, err
	case workload.LanguageModeling:
		loss, _, err := train.Evaluate(net, eval)
		if err != nil {
			return 0, err
		}
		return model.Perplexity(loss), nil
	case workload.AutonomousDriving:
		return train.EvaluateMAE(net, eval)
	case workload.MachineTranslation:
		return table2BLEU(net, eval)
	}
	return 0, fmt.Errorf("table2: unhandled task %v", bench.Task)
}

// table2BLEU decodes greedy per-timestep translations and scores them
// against the reference targets.
func table2BLEU(net *model.Network, eval train.Provider) (float64, error) {
	var cands, refs [][]int
	for b := 0; b < eval.NumBatches(); b++ {
		batch := eval.Batch(b)
		res, err := net.Forward(batch.Inputs, batch.Targets, nil)
		if err != nil {
			return 0, err
		}
		seqLen := len(batch.Inputs)
		batchSize := batch.Inputs[0].Rows
		for i := 0; i < batchSize; i++ {
			cand := make([]int, 0, seqLen)
			ref := make([]int, 0, seqLen)
			for t := 0; t < seqLen; t++ {
				if res.Logits[t] == nil {
					continue
				}
				cand = append(cand, model.Argmax(res.Logits[t])[i])
				ref = append(ref, batch.Targets.Classes[t][i])
			}
			cands = append(cands, cand)
			refs = append(refs, ref)
		}
	}
	return train.CorpusBLEU(cands, refs), nil
}

func table2Metric(bench workload.Benchmark) string {
	switch bench.Task {
	case workload.LanguageModeling:
		return "PPL (lower better)"
	case workload.AutonomousDriving:
		return "MAE (lower better)"
	case workload.MachineTranslation:
		return "BLEU (higher better)"
	}
	return "accuracy %"
}

func table2Format(bench workload.Benchmark, v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}
