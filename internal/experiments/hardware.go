package experiments

import (
	"fmt"

	"etalstm/internal/arch"
	"etalstm/internal/gpu"
	"etalstm/internal/hw/accum"
	"etalstm/internal/stats"
	"etalstm/internal/workload"
)

// Fig11 regenerates Fig. 11: the streaming adder-based accumulator's
// timing on an 8-value stream with a 2-cycle adder, plus the sum
// correctness check.
func Fig11(Options) (*Report, error) {
	rep := &Report{
		ID: "fig11", Title: "Streaming adder-based accumulator timing (8 values, 2-cycle adder)",
		Header: []string{"inputs", "adder latency", "total cycles", "ideal cycles", "overhead"},
	}
	vals := []float32{1, 2, 4, 8, 16, 32, 64, 128}
	sum, cycles := accum.Accumulate(vals, 2)
	if sum != 255 {
		return nil, fmt.Errorf("fig11: accumulator sum %v != 255", sum)
	}
	rep.Add("8 (Fig.11 chart)", 2, cycles, accum.IdealCycles(8, 2), "-")
	for _, n := range []int{32, 256, 1024, 4096} {
		_, c := accum.Accumulate(make([]float32, n), 8)
		ideal := accum.IdealCycles(n, 20)
		rep.Add(fmt.Sprintf("%d", n), 8, c, ideal,
			fmt.Sprintf("%.2f%%", 100*float64(c-ideal)/float64(ideal)))
	}
	rep.Note("paper Fig. 11: 8 values through a 2-cycle adder complete at cycle 12; measured %d", cycles)
	rep.Note("paper Sec. VI-B5: <2.87%% latency overhead for >=1024 streaming inputs")
	return rep, nil
}

// fig15Comparisons evaluates every scenario on every benchmark.
func fig15Comparisons() map[string][]arch.Comparison {
	hw := arch.Paper()
	dev := gpu.V100()
	out := make(map[string][]arch.Comparison)
	for _, b := range workload.Suite() {
		out[b.Name] = arch.Compare(b.Cfg, hw, dev, arch.DefaultOptParams(b.Cfg))
	}
	return out
}

var fig15Scenarios = []arch.Scenario{
	arch.Baseline, arch.MS1, arch.MS2, arch.CombineMS,
	arch.LSTMInf, arch.StaticArch, arch.DynArch, arch.EtaLSTM,
}

// Fig15a regenerates Fig. 15a: speedup of every design scenario over
// the GPU baseline on the six benchmarks.
func Fig15a(Options) (*Report, error) {
	rep := &Report{ID: "fig15a", Title: "Speedup vs GPU baseline"}
	rep.Header = append(rep.Header, "benchmark")
	for _, sc := range fig15Scenarios {
		rep.Header = append(rep.Header, sc.String())
	}
	all := fig15Comparisons()
	perScenario := make(map[arch.Scenario][]float64)
	for _, b := range workload.Suite() {
		row := []any{b.Name}
		for _, sc := range fig15Scenarios {
			s := all[b.Name][sc].Speedup
			perScenario[sc] = append(perScenario[sc], s)
			row = append(row, fmt.Sprintf("%.2fx", s))
		}
		rep.Add(row...)
	}
	avg := []any{"Ave"}
	for _, sc := range fig15Scenarios {
		avg = append(avg, fmt.Sprintf("%.2fx", stats.Mean(perScenario[sc])))
	}
	rep.Add(avg...)
	rep.Note("paper averages: MS1 1.21x, MS2 1.32x, Combine-MS 1.56x, LSTM-Inf 0.72x, Static-Arch 0.97x, Dyn-Arch 1.42x, eta-LSTM 3.99x (up to 5.73x)")
	return rep, nil
}

// Fig15b regenerates Fig. 15b: normalized energy consumption.
func Fig15b(Options) (*Report, error) {
	rep := &Report{ID: "fig15b", Title: "Normalized energy consumption vs GPU baseline"}
	rep.Header = append(rep.Header, "benchmark")
	for _, sc := range fig15Scenarios {
		rep.Header = append(rep.Header, sc.String())
	}
	all := fig15Comparisons()
	perScenario := make(map[arch.Scenario][]float64)
	for _, b := range workload.Suite() {
		row := []any{b.Name}
		for _, sc := range fig15Scenarios {
			e := all[b.Name][sc].NormalizedEnergy
			perScenario[sc] = append(perScenario[sc], e)
			row = append(row, fmt.Sprintf("%.2f", e))
		}
		rep.Add(row...)
	}
	avg := []any{"Ave"}
	for _, sc := range fig15Scenarios {
		avg = append(avg, fmt.Sprintf("%.2f", stats.Mean(perScenario[sc])))
	}
	rep.Add(avg...)
	rep.Note("paper averages: Combine-MS saves 35.26%%, eta-LSTM saves 63.70%% (up to 76.48%%)")
	return rep, nil
}

// Fig16 regenerates Fig. 16: energy efficiency of the hardware design
// scenarios normalized to the GPU baseline.
func Fig16(Options) (*Report, error) {
	scenarios := []arch.Scenario{arch.Baseline, arch.LSTMInf, arch.StaticArch, arch.DynArch}
	rep := &Report{ID: "fig16", Title: "Normalized energy efficiency of hardware scenarios"}
	rep.Header = append(rep.Header, "benchmark")
	for _, sc := range scenarios {
		rep.Header = append(rep.Header, sc.String())
	}
	all := fig15Comparisons()
	var dyn []float64
	for _, b := range workload.Suite() {
		row := []any{b.Name}
		for _, sc := range scenarios {
			g := all[b.Name][sc].EnergyEffGain
			if sc == arch.DynArch {
				dyn = append(dyn, g)
			}
			row = append(row, fmt.Sprintf("%.2f", g))
		}
		rep.Add(row...)
	}
	rep.Note("paper: Dyn-Arch achieves on average 1.67x (up to 2.69x) the baseline's energy efficiency; measured average %.2fx (max %.2fx)",
		stats.Mean(dyn), maxOf(dyn))
	return rep, nil
}

// Table3 regenerates Table III: the Xilinx accumulator IP versus the
// adder-based design on resources, power and latency.
func Table3(Options) (*Report, error) {
	ip := accum.XilinxIP()
	ours := accum.AdderBased()
	rep := &Report{
		ID: "table3", Title: "Accumulator designs: Xilinx IP vs adder-based",
		Header: []string{"design", "LUT", "FF", "clockW", "signalW", "logicW", "totalW", "latency(cyc)"},
	}
	add := func(name string, r accum.Resources) {
		rep.Add(name, r.LUT, r.FF,
			fmt.Sprintf("%.3f", r.ClockPower), fmt.Sprintf("%.3f", r.SignalPower),
			fmt.Sprintf("%.3f", r.LogicPower), fmt.Sprintf("%.3f", r.TotalPower()),
			r.PipelineLatency)
	}
	add("Xilinx IP", ip)
	add("Our Design", ours)
	s := accum.Compare(ip, ours)
	rep.Note("savings: LUT %.2f%% (paper 43.61%%), FF %.2f%% (paper 37.25%%), power %.1f%% (paper 17%%)",
		100*s.LUT, 100*s.FF, 100*s.Power)
	ov := accum.Overhead(1024, 8, 20)
	rep.Note("latency overhead at 1024 streaming inputs: %.2f%% (paper <2.87%%)", 100*ov)
	return rep, nil
}
