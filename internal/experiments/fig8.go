package experiments

import (
	"fmt"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/stats"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

// Fig8 regenerates Fig. 8: per-timestamp weight-gradient magnitudes for
// a single-loss model (IMDB — magnitudes decay from the last cell
// backwards) and a per-timestamp-loss model (WMT — magnitudes grow from
// the last cell to the first). These trends are the empirical basis of
// MS2's Eq. 4 predictor.
func Fig8(opts Options) (*Report, error) {
	rep := &Report{
		ID: "fig8", Title: "Weight-gradient magnitude per BP-cell timestamp",
		Header: []string{"benchmark", "layer", "first-t mag", "mid-t mag", "last-t mag", "trend"},
	}
	for _, name := range []string{"IMDB", "WMT"} {
		series, err := fig8Series(name, opts)
		if err != nil {
			return nil, err
		}
		for l, mags := range series {
			trend := "flat"
			switch stats.Monotone(mags) {
			case 1:
				trend = "increasing with t"
			case -1:
				trend = "decreasing with t"
			}
			n := len(mags)
			rep.Add(name, fmt.Sprintf("%d", l), mags[0], mags[n/2], mags[n-1], trend)
		}
	}
	rep.Note("paper: single-loss models (IMDB) show magnitudes decaying from the last timestamp backwards; per-timestamp-loss models (WMT) show the opposite")
	rep.Note("reproduction: the pattern is sharpest at the loss-adjacent layers (IMDB's top layer, WMT's bottom layers); on synthetic tasks layers far from the loss pick up task-information gradients that soften the trend")
	return rep, nil
}

// fig8Series trains a scaled benchmark briefly, then measures per-cell
// gradient magnitudes with the BP hook.
func fig8Series(name string, opts Options) ([][]float64, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	bench := b.Scaled(64, 16, 8)
	epochs := 4
	if !opts.Quick {
		bench = b.Scaled(16, 40, 16)
		epochs = 8
	}
	prov := bench.Provider(3, opts.Seed)
	net, err := model.NewNetwork(bench.Cfg, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	tr := &train.Trainer{Net: net, Opt: &train.Adam{LR: 0.01}, Clip: 5}
	if _, err := tr.Run(prov, epochs); err != nil {
		return nil, err
	}

	series := make([][]float64, bench.Cfg.Layers)
	for l := range series {
		series[l] = make([]float64, bench.Cfg.SeqLen)
	}
	for bi := 0; bi < prov.NumBatches(); bi++ {
		batch := prov.Batch(bi)
		res, err := net.Forward(batch.Inputs, batch.Targets, nil)
		if err != nil {
			return nil, err
		}
		grads := net.NewGradients()
		err = net.Backward(res, nil, grads, model.BackwardOpts{
			OnCell: func(l, t int, cell *lstm.Grads) {
				series[l][t] += cell.AbsSum()
			},
		})
		if err != nil {
			return nil, err
		}
	}
	return series, nil
}
