package experiments

import (
	"fmt"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/stats"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

// Fig6 regenerates Fig. 6: the cumulative absolute-value distribution
// of the FW intermediate variables versus the BP-EW-P1 results, at
// several training epochs. The paper's observation — ~25 % of raw FW
// intermediates below 0.1 versus ~65 % of P1 results, stable across
// epochs — is what makes MS1's reordering worthwhile.
func Fig6(opts Options) (*Report, error) {
	bench, epochs := fig6Scale(opts)
	prov := bench.Provider(3, opts.Seed)
	net, err := model.NewNetwork(bench.Cfg, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	tr := &train.Trainer{Net: net, Opt: &train.Adam{LR: 0.01}, Clip: 5}

	rep := &Report{
		ID: "fig6", Title: "Cumulative |value| distribution: FW intermediates vs BP-EW-P1 results",
		Header: []string{"epoch", "population", "P(|v|<0.05)", "P(|v|<0.1)", "P(|v|<0.2)", "P(|v|<0.5)"},
	}

	sample := []int{0, epochs / 2, epochs - 1}
	var rawAt01, p1At01 []float64
	for e := 0; e < epochs; e++ {
		if containsInt(sample, e) {
			raw, p1 := collectDistributions(net, prov)
			rep.Add(fmt.Sprintf("%d", e), "FW-intermediates",
				raw.At(0.05), raw.At(0.1), raw.At(0.2), raw.At(0.5))
			rep.Add(fmt.Sprintf("%d", e), "BP-EW-P1",
				p1.At(0.05), p1.At(0.1), p1.At(0.2), p1.At(0.5))
			rawAt01 = append(rawAt01, raw.At(0.1))
			p1At01 = append(p1At01, p1.At(0.1))
		}
		if _, err := tr.RunEpoch(prov, e); err != nil {
			return nil, err
		}
	}
	rep.Note("paper: ~25%% of FW intermediates and ~65%% of BP-EW-P1 results fall below 0.1, stable across epochs")
	rep.Note("measured below-0.1 fractions: FW %.1f%%, P1 %.1f%% (averaged over sampled epochs)",
		100*stats.Mean(rawAt01), 100*stats.Mean(p1At01))
	return rep, nil
}

func fig6Scale(opts Options) (workload.Benchmark, int) {
	b, _ := workload.ByName("IMDB")
	if opts.Quick {
		return b.Scaled(64, 12, 8), 6
	}
	return b.Scaled(16, 30, 16), 12
}

// collectDistributions runs one forward pass and gathers the absolute
// values of the raw intermediates and their P1 products.
func collectDistributions(net *model.Network, prov train.Provider) (raw, p1 *stats.CDF) {
	batch := prov.Batch(0)
	res, err := net.Forward(batch.Inputs, batch.Targets, model.BaselinePolicy())
	if err != nil {
		panic(err)
	}
	raw = stats.NewCDF(nil)
	p1 = stats.NewCDF(nil)
	for l := range res.Cache {
		for t := range res.Cache[l] {
			cache := res.Cache[l][t]
			if cache == nil {
				continue
			}
			raw.Merge(cache.F.Data)
			raw.Merge(cache.I.Data)
			raw.Merge(cache.C.Data)
			raw.Merge(cache.O.Data)
			raw.Merge(cache.S.Data)
			pp := lstm.ComputeP1(nil, cache)
			for _, m := range pp.Matrices() {
				p1.Merge(m.Data)
			}
		}
	}
	return raw, p1
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
