// Package core integrates η-LSTM's software optimizations into a
// complete training loop — the cross-stack "η-LSTM" of the paper, on
// the software side. It composes:
//
//   - MS1 (internal/reorder): the FW pass computes and near-zero-prunes
//     the BP-EW-P1 products instead of storing raw gates;
//   - MS2 (internal/skip): per-epoch skip plans from the Eq. 4
//     magnitude predictor gated by the Eq. 5 loss prediction, with
//     convergence-aware gradient rescaling;
//   - the bookkeeping (footprint, data movement, skip statistics) the
//     experiment harnesses report.
//
// The hardware side (internal/arch) consumes the same optimization
// parameters; FootprintParams/FootprintMode bridge the two by exposing
// this training run's measured operating point to the cost models.
package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"etalstm/internal/lstm"
	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/obs"
	"etalstm/internal/parallel"
	"etalstm/internal/reorder"
	"etalstm/internal/rtrace"
	"etalstm/internal/skip"
	"etalstm/internal/tensor"
	"etalstm/internal/train"
)

// Config selects which optimizations run and their knobs.
type Config struct {
	// EnableMS1 turns on execution reordering + P1 pruning.
	EnableMS1 bool
	// EnableMS2 turns on BP-cell skipping.
	EnableMS2 bool

	// PruneThreshold is MS1's near-zero cutoff (0 = 0.1, the paper's
	// operating point).
	PruneThreshold float32
	// SparseBackward routes the backward pass through the pair-driven
	// sparse kernels: BP-EW-P2 touches only the P1 pairs that survived
	// MS1's pruning and BP-MatMul gathers over each gate's surviving
	// columns, so BP compute shrinks with the measured prune ratio.
	// Requires EnableMS1 (no-op otherwise); at PruneThreshold → 0 the
	// sparse path is bitwise identical to the dense one.
	SparseBackward bool
	// BackwardTopK, when positive (with SparseBackward), additionally
	// caps each batch row of the weight-gradient MatMuls to its
	// BackwardTopK largest-|δgate| columns (structurally sparsified
	// backward propagation, Zhu et al. arXiv:1806.00512). Propagated
	// gradients keep the full pattern; ≥ hidden size is the identity.
	BackwardTopK int
	// StoreF16 stores MS1's pruned P1 intermediates rounded to binary16
	// precision (compute stays float32): each surviving value makes a
	// float32→float16→float32 round trip right after pruning, halving
	// what the compressed pair store would hold. Requires EnableMS1.
	StoreF16 bool

	// SkipThreshold is MS2's relative significance cutoff used to set
	// the absolute bar at calibration (0 = skip.DefaultThreshold).
	SkipThreshold float64
	// MaxSkipFrac caps the skipped share per layer (0 = skip default).
	MaxSkipFrac float64
	// WarmupEpochs run unskipped while Eq. 5 gathers loss history
	// (the paper's "first three epochs will not perform the
	// prediction"). 0 means 3.
	WarmupEpochs int

	// MemoryBudget caps the stored activation bytes of one FW+BP pass
	// (per replica). 0 (or a budget the full-storage peak already fits)
	// trains with classic full-storage BPTT; otherwise memplan.Plan
	// picks checkpoint columns and the trainer runs the checkpointed
	// FW/BP pair, recomputing segments during BP. Gradients and losses
	// are bitwise identical either way.
	MemoryBudget int64
}

func (c Config) warmup() int {
	if c.WarmupEpochs == 0 {
		return 3
	}
	return c.WarmupEpochs
}

// Stats accumulates what the optimizations did across an epoch.
type Stats struct {
	Epoch        int
	MeanLoss     float64
	PruneStats   reorder.PruneStats
	SkippedCells int
	TotalCells   int
	SkipFrac     float64
	ScaleApplied bool
	// Wall is the epoch's wall-clock duration.
	Wall time.Duration
	// PeakStoredBytes is the measured peak of stored activation bytes of
	// the epoch's worst batch (0 when training runs full storage);
	// RecomputedCells counts FW cells replayed during BP across the
	// epoch (checkpointed BPTT only).
	PeakStoredBytes int64
	RecomputedCells int
}

// MeasuredSkipFrac returns the skipped share of BP cells the epoch
// actually saw (SkipFrac is the plan's intent; this is the outcome).
func (s Stats) MeasuredSkipFrac() float64 {
	if s.TotalCells == 0 {
		return 0
	}
	return float64(s.SkippedCells) / float64(s.TotalCells)
}

// RecomputeRatio returns the fraction of FW cells the epoch re-executed
// during BP (0 under full storage).
func (s Stats) RecomputeRatio() float64 {
	if s.TotalCells == 0 {
		return 0
	}
	return float64(s.RecomputedCells) / float64(s.TotalCells)
}

// Trainer is the η-LSTM training driver.
//
// Scratch memory: serial runs (Workers <= 1) execute every batch on
// Net, whose embedded tensor.Workspace is therefore reused across the
// whole run — steady-state epochs recycle the same FW/BP buffers
// instead of reallocating them. Data-parallel runs give each replica
// clone a private workspace (see internal/parallel), so no arena is
// ever shared between goroutines.
type Trainer struct {
	Net  *model.Network
	Opt  train.Optimizer
	Clip float64 // max gradient L2 norm; <= 0 disables clipping
	Cfg  Config

	// Workers is the data-parallel replica count. <= 1 runs the classic
	// serial loop (one optimizer step per minibatch); > 1 shards each
	// epoch's minibatches across that many replica workers
	// (internal/parallel) with one optimizer step per group of Workers
	// batches, gradients merged by a deterministic tree all-reduce.
	Workers int
	// Reducer applies merged gradients (averaging, clipping, optimizer
	// step). nil selects train.ClipStep{Opt, Clip} wired to the gradient
	// instruments.
	Reducer train.Reducer
	// Sync is the gradient transport each optimizer step's contributions
	// merge through. nil keeps the built-in paths bitwise intact: the
	// serial loop applies each batch's gradients directly and the
	// parallel engine uses its default in-process tree all-reduce. A
	// non-nil sync (dist.Compressed, dist.Worker) routes both the serial
	// and parallel step through GradientSync.Reduce, and the reducer
	// averages by the contribution count the sync reports — which is how
	// one process's trainer joins a multi-process data-parallel run.
	Sync train.GradientSync

	// Observer, when non-nil, receives each epoch's Stats right after
	// the epoch completes — the introspection hook behind
	// etalstm.TrainerOptions.Observer.
	Observer func(Stats)
	// RecordPhases enables phase-span recording (FW / BP-EW-P1 /
	// BP-EW-P2 / BP-MatMul / all-reduce / optimizer). Off by default:
	// disabled recording costs one nil test per phase boundary.
	RecordPhases bool

	history   skip.LossHistory
	predictor *skip.Predictor
	// absBar is the calibrated absolute significance threshold; set
	// after the first epoch's magnitude calibration.
	absBar float64
	// engine is the lazily-built data-parallel engine (Workers > 1).
	engine *parallel.Engine
	// placement is the cached checkpoint placement for Cfg.MemoryBudget
	// (nil until first resolved; see Placement).
	placement *memplan.Placement

	// ins are the telemetry instruments (lazily bound to obs.Default).
	ins *obs.Train
	// rec aggregates phase spans across epochs; replicaRecs are the
	// per-worker recorders folded into it after each parallel epoch.
	rec         *obs.Recorder
	replicaRecs []*obs.Recorder
	// arenaHits/arenaMisses remember the workspace counters already
	// exported, so each epoch adds only the delta to the cumulative
	// arena instruments.
	arenaHits, arenaMisses int64
	// lastPred is the Eq. 5 loss extrapolation used for the current
	// epoch's plan; compared against the realized loss afterwards.
	lastPred   float64
	lastPredOK bool

	// EpochStats records per-epoch optimization behaviour.
	EpochStats []Stats
}

// New builds an η-LSTM trainer.
func New(net *model.Network, opt train.Optimizer, clip float64, cfg Config) *Trainer {
	return &Trainer{
		Net: net, Opt: opt, Clip: clip, Cfg: cfg,
		predictor: skip.NewPredictor(net.Cfg.Loss, net.Cfg.Layers, net.Cfg.SeqLen),
	}
}

// instruments lazily binds the trainer's telemetry bundle to the
// process-wide registry. Instruments are always live — they are atomic
// writes on a path that runs once per step or epoch, far off the
// per-cell hot path the span switch guards.
func (tr *Trainer) instruments() *obs.Train {
	if tr.ins == nil {
		tr.ins = obs.NewTrain(obs.Default)
	}
	return tr.ins
}

// Phases returns the accumulated phase-span breakdown (nil unless
// RecordPhases was set before training).
func (tr *Trainer) Phases() []obs.PhaseStat {
	if tr.rec == nil {
		return nil
	}
	return tr.rec.Breakdown()
}

// reducer returns the configured reducer or the default clip-then-step,
// wired to the gradient-norm instruments.
func (tr *Trainer) reducer() train.Reducer {
	if tr.Reducer != nil {
		return tr.Reducer
	}
	ins := tr.instruments()
	return train.ClipStep{Opt: tr.Opt, Clip: tr.Clip, OnApply: func(norm float64, clipped bool) {
		ins.GradNorm.Set(norm)
		if clipped {
			ins.ClipEvents.Inc()
		}
	}}
}

// baseStore is the storage mode for executed cells.
func (tr *Trainer) baseStore() model.CellStore {
	if tr.Cfg.EnableMS1 {
		return model.StoreP1
	}
	return model.StoreRaw
}

// planFor builds the epoch's skip plan (or a no-skip plan during
// warmup / when MS2 is off).
func (tr *Trainer) planFor(epoch int) *skip.Plan {
	cfg := tr.Net.Cfg
	if !tr.Cfg.EnableMS2 || epoch < tr.Cfg.warmup() || tr.absBar <= 0 {
		return skip.NoSkip(cfg.Layers, cfg.SeqLen, tr.baseStore())
	}
	predLoss, ok := tr.history.Predict()
	if !ok {
		predLoss = tr.history.Last()
	}
	// Remember the extrapolation so the epoch's realized loss can score
	// it (the etalstm_ms2_pred_loss_error gauge).
	tr.lastPred, tr.lastPredOK = predLoss, ok
	return skip.Build(tr.predictor, predLoss, skip.Config{
		Threshold:         tr.Cfg.SkipThreshold,
		AbsoluteThreshold: tr.absBar,
		MaxFrac:           tr.Cfg.MaxSkipFrac,
		Base:              tr.baseStore(),
	})
}

// batchFn builds the per-minibatch FW+BP closure for one epoch: run
// forward under the epoch's storage policy, apply MS1's near-zero
// pruning, backpropagate (collecting calibration magnitudes when
// requested), and apply MS2's convergence-aware scaling. The same
// closure drives both the serial loop and the data-parallel engine, so
// the two paths share every floating-point operation.
//
// When boundaries spans more than one segment the closure runs the
// checkpointed FW/BP pair instead of the full-storage one. MS1's
// pruning then happens inside the OnP1 hook — once per P1 set whether
// it was produced by the main FW sweep or regenerated during BP — so
// the compressed store sees the identical pruned products on both
// paths.
func (tr *Trainer) batchFn(epoch int, plan *skip.Plan, policy model.StoragePolicy, calibrating bool, boundaries []int) parallel.BatchFn {
	checkpointed := len(boundaries) > 1
	return func(net *model.Network, batch train.Batch, b int) (parallel.BatchResult, error) {
		var out parallel.BatchResult
		pcfg := reorder.Config{Threshold: tr.Cfg.PruneThreshold}
		// pruneP1 applies MS1's near-zero pruning (and, under StoreF16,
		// the binary16 storage rounding of the survivors) to one P1 set —
		// the single transformation both storage paths run, so the
		// full-storage and checkpointed trainers see identical products.
		pruneP1 := func(p1 *lstm.P1) {
			out.Prune = out.Prune.Add(reorder.PruneInPlace(p1, pcfg))
			if tr.Cfg.StoreF16 {
				for _, m := range p1.Matrices() {
					tensor.QuantizeF16(m)
				}
			}
		}

		grads := net.NewGradients()
		opts := model.BackwardOpts{
			SparseBP: tr.Cfg.SparseBackward && tr.Cfg.EnableMS1,
			TopK:     tr.Cfg.BackwardTopK,
		}
		if calibrating {
			cfg := net.Cfg
			out.Observed = make([][]float64, cfg.Layers)
			for l := range out.Observed {
				out.Observed[l] = make([]float64, cfg.SeqLen)
			}
			opts.OnCell = func(l, t int, cell *lstm.Grads) {
				out.Observed[l][t] += cell.AbsSum()
			}
		}

		if checkpointed {
			if tr.Cfg.EnableMS1 {
				opts.OnP1 = func(l, t int, p1 *lstm.P1) {
					pruneP1(p1)
				}
			}
			res, _, err := net.ForwardCheckpointed(batch.Inputs, batch.Targets, policy, nil, boundaries)
			if err != nil {
				return out, fmt.Errorf("core: epoch %d batch %d forward: %w", epoch, b, err)
			}
			if math.IsNaN(res.Loss) || math.IsInf(res.Loss, 0) {
				return out, fmt.Errorf("core: epoch %d batch %d: non-finite loss %v (diverged; lower the learning rate)",
					epoch, b, res.Loss)
			}
			out.Loss = res.Loss
			if err := net.BackwardCheckpointed(res, policy, grads, opts); err != nil {
				return out, fmt.Errorf("core: epoch %d batch %d backward: %w", epoch, b, err)
			}
			out.PeakStored = res.PeakStoredBytes()
			out.Recomputed = res.RecomputedCells()
		} else {
			res, err := net.Forward(batch.Inputs, batch.Targets, policy)
			if err != nil {
				return out, fmt.Errorf("core: epoch %d batch %d forward: %w", epoch, b, err)
			}
			if math.IsNaN(res.Loss) || math.IsInf(res.Loss, 0) {
				return out, fmt.Errorf("core: epoch %d batch %d: non-finite loss %v (diverged; lower the learning rate)",
					epoch, b, res.Loss)
			}
			out.Loss = res.Loss

			if tr.Cfg.EnableMS1 {
				// MS1's pruning: the approximation the compressed store
				// introduces, applied where the compression module would.
				for l := range res.P1 {
					for t := range res.P1[l] {
						if p1 := res.P1[l][t]; p1 != nil {
							pruneP1(p1)
						}
					}
				}
			}

			if err := net.Backward(res, policy, grads, opts); err != nil {
				return out, fmt.Errorf("core: epoch %d batch %d backward: %w", epoch, b, err)
			}
		}

		if plan.SkippedFrac() > 0 {
			if err := plan.ApplyScaling(grads); err != nil {
				return out, err
			}
		}
		out.Grads = grads
		return out, nil
	}
}

// Placement resolves (and caches) the checkpoint placement for the
// configured MemoryBudget. With no budget — or one the full-storage
// peak already fits — the returned placement is a single segment and
// training runs classic full-storage BPTT. The placement depends only
// on the network geometry and the MS1 flag, both fixed at construction,
// so it is computed once.
func (tr *Trainer) Placement() *memplan.Placement {
	if tr.placement == nil {
		pl := memplan.Plan(tr.Net.Cfg, tr.FootprintMode(), tr.Cfg.MemoryBudget)
		tr.placement = &pl
	}
	return tr.placement
}

// RunEpoch trains one epoch over p. During epoch 0 it calibrates the
// Eq. 4 predictor's α from observed per-cell gradient magnitudes and
// fixes the absolute significance bar. ctx cancels the epoch between
// minibatch groups; the returned error is then ctx.Err() and no further
// optimizer steps are applied.
func (tr *Trainer) RunEpoch(ctx context.Context, p train.Provider, epoch int) (Stats, error) {
	if tr.Net == nil || tr.Opt == nil {
		return Stats{}, fmt.Errorf("core: Trainer requires Net and Opt")
	}
	cfg := tr.Net.Cfg
	start := time.Now()
	ins := tr.instruments()
	// Phase recording feeds two consumers: the explicit RecordPhases
	// breakdown and — when a process-default tracer is installed — the
	// per-step trace's phase child spans (rtrace.FoldPhases).
	if (tr.RecordPhases || rtrace.Default() != nil) && tr.rec == nil {
		tr.rec = &obs.Recorder{}
	}
	plan := tr.planFor(epoch)
	policy := plan.Policy()

	placement := tr.Placement()
	if !placement.Feasible {
		return Stats{}, fmt.Errorf("core: memory budget %d B is infeasible: even per-step checkpoints peak at %d B (cfg %+v)",
			tr.Cfg.MemoryBudget, placement.PredictedPeak, cfg)
	}

	st := Stats{Epoch: epoch, SkipFrac: plan.SkippedFrac()}

	calibrating := tr.Cfg.EnableMS2 && epoch == 0
	fn := tr.batchFn(epoch, plan, policy, calibrating, placement.Boundaries)

	var epochRes parallel.EpochResult
	var err error
	if tr.Workers > 1 {
		if tr.engine == nil || tr.engine.Workers() != tr.Workers {
			tr.engine = parallel.New(tr.Net, tr.Workers, tr.reducer())
			tr.replicaRecs = nil
		}
		if tr.rec != nil && tr.replicaRecs == nil {
			// One recorder per replica, riding the replica's workspace
			// (same goroutine confinement). They are folded into the
			// aggregate after the epoch, once the workers have joined.
			for _, rep := range tr.engine.Replicas() {
				r := &obs.Recorder{}
				rep.Workspace().SetRecorder(r)
				tr.replicaRecs = append(tr.replicaRecs, r)
			}
		}
		tr.engine.Rec = tr.rec
		tr.engine.Sync = tr.Sync
		tr.engine.OnStep = func(d time.Duration) { ins.StepLatency.Observe(d.Seconds()) }
		tr.engine.OnWait = func(_ int, d time.Duration) { ins.AllReduceWait.Observe(d.Seconds()) }
		epochRes, err = tr.engine.RunEpoch(ctx, p, fn)
		if tr.rec != nil {
			for _, r := range tr.replicaRecs {
				tr.rec.Add(r)
				r.Reset()
			}
		}
	} else {
		tr.Net.Workspace().SetRecorder(tr.rec)
		epochRes, err = tr.runSerial(ctx, p, fn, epoch)
	}
	st.PruneStats = epochRes.Prune
	st.SkippedCells = epochRes.SkippedCells
	st.TotalCells = epochRes.Batches * cfg.Cells()
	st.PeakStoredBytes = epochRes.PeakStored
	st.RecomputedCells = epochRes.RecomputedCells
	if plan.SkippedFrac() > 0 && epochRes.Batches > 0 {
		st.ScaleApplied = true
	}
	if err != nil {
		return st, err
	}

	batches := epochRes.Batches
	if batches > 0 {
		st.MeanLoss = epochRes.TotalLoss / float64(batches)
	}
	tr.history.Record(st.MeanLoss)

	if calibrating && epochRes.Observed != nil {
		observed := epochRes.Observed
		for l := range observed {
			for t := range observed[l] {
				observed[l][t] /= float64(batches)
			}
		}
		tr.predictor.Calibrate(st.MeanLoss, observed)
		// The absolute bar: SkipThreshold × the largest calibrated
		// magnitude. Cells predicted below it are insignificant.
		th := tr.Cfg.SkipThreshold
		if th == 0 {
			th = skip.DefaultThreshold
		}
		mx := 0.0
		for l := 0; l < cfg.Layers; l++ {
			for t := 0; t < cfg.SeqLen; t++ {
				if m := tr.predictor.Magnitude(st.MeanLoss, l, t); m > mx {
					mx = m
				}
			}
		}
		tr.absBar = th * mx
	}

	st.Wall = time.Since(start)
	ins.Epochs.Inc()
	ins.EpochLoss.Set(st.MeanLoss)
	ins.EpochSeconds.Set(st.Wall.Seconds())
	ins.MS1PruneRatio.Set(st.PruneStats.Frac())
	ins.MS1StoredPairs.Add(st.PruneStats.Kept())
	if tr.Cfg.SparseBackward && tr.Cfg.EnableMS1 {
		ins.SparseBPDensity.Set(1 - st.PruneStats.Frac())
	}
	ins.MS2SkipRatio.Set(st.MeasuredSkipFrac())
	if !placement.FullStorage() {
		ins.CkptColumns.Set(float64(len(placement.Boundaries)))
		ins.CkptBytes.Set(float64(placement.CheckpointBytes))
		ins.PeakStored.Set(float64(st.PeakStoredBytes))
		ins.RecomputeRatio.Set(st.RecomputeRatio())
	}
	if tr.lastPredOK {
		ins.MS2PredLossError.Set(math.Abs(tr.lastPred - st.MeanLoss))
		tr.lastPredOK = false
	}
	tr.observeArenas(ins)

	tr.EpochStats = append(tr.EpochStats, st)
	if tr.Observer != nil {
		tr.Observer(st)
	}
	return st, nil
}

// observeArenas folds the workspace traffic of the master network and
// every replica into the cumulative arena instruments. The workspace
// counters are lifetime totals, so only the delta since the previous
// call is added; a rebuilt engine (fresh replicas) makes the total
// shrink momentarily, which Counter.Add ignores until the new replicas
// catch up.
func (tr *Trainer) observeArenas(ins *obs.Train) {
	var hits, misses, elems int64
	add := func(ws *tensor.Workspace) {
		s := ws.Stats()
		hits += s.Hits
		misses += s.Misses
		_, el := ws.Retained()
		elems += el
	}
	add(tr.Net.Workspace())
	if tr.engine != nil {
		for _, rep := range tr.engine.Replicas() {
			add(rep.Workspace())
		}
	}
	ins.ArenaHits.Add(hits - tr.arenaHits)
	ins.ArenaMisses.Add(misses - tr.arenaMisses)
	tr.arenaHits, tr.arenaMisses = hits, misses
	ins.ArenaBytes.Set(float64(elems) * 4) // float32 elements
}

// runSerial is the classic one-step-per-minibatch loop: every batch
// runs on the master network and applies through the reducer with a
// replica count of one, preserving the seed trainer's exact float
// operation order.
func (tr *Trainer) runSerial(ctx context.Context, p train.Provider, fn parallel.BatchFn, epoch int) (parallel.EpochResult, error) {
	var res parallel.EpochResult
	red := tr.reducer()
	ins := tr.instruments()
	rtr := rtrace.Default()
	for b := 0; b < p.NumBatches(); b++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		t0 := time.Now()
		// The step span: one per optimizer step, with the recorder's
		// phase wall time folded in as children after the step. Disabled
		// tracing keeps this a nil span — pointer tests only.
		var step *rtrace.Span
		var before obs.PhaseSnapshot
		if rtr != nil {
			step = rtr.StartSpan("train.step")
			step.Attr("epoch", strconv.Itoa(epoch))
			step.Attr("batch", strconv.Itoa(b))
			before = tr.rec.Snapshot()
			if s, ok := tr.Sync.(interface{ SetStepSpan(*rtrace.Span) }); ok {
				s.SetStepSpan(step)
			}
		}
		r, err := fn(tr.Net, p.Batch(b), b)
		if err != nil {
			step.FinishErr(err)
			return res, err
		}
		// With no sync configured the batch's gradients apply directly —
		// the seed trainer's exact float operation order. A sync routes
		// the step through the transport seam (a distributed worker's
		// serial loop is one replica of a multi-process group).
		applied, contribs := r.Grads, 1
		if tr.Sync != nil {
			sp := tr.rec.Begin(obs.PhaseAllReduce)
			merged, n, serr := tr.Sync.Reduce([]*model.Gradients{r.Grads})
			sp.End()
			if serr != nil {
				step.FinishErr(serr)
				return res, serr
			}
			applied, contribs = merged, n
		}
		sp := tr.rec.Begin(obs.PhaseOptimizer)
		red.Apply(tr.Net, applied, contribs)
		sp.End()
		if step != nil {
			rtrace.FoldPhases(step, t0, tr.rec.Snapshot().Delta(before))
			step.Finish()
		}
		ins.StepLatency.Observe(time.Since(t0).Seconds())
		res.Batches++
		res.TotalLoss += r.Loss
		res.Prune = res.Prune.Add(r.Prune)
		res.SkippedCells += r.Grads.SkippedCells
		res.ExecutedCells += r.Grads.ExecutedCells
		if r.PeakStored > res.PeakStored {
			res.PeakStored = r.PeakStored
		}
		res.RecomputedCells += r.Recomputed
		if r.Observed != nil {
			if res.Observed == nil {
				res.Observed = r.Observed
			} else {
				for l := range r.Observed {
					for t := range r.Observed[l] {
						res.Observed[l][t] += r.Observed[l][t]
					}
				}
			}
		}
	}
	return res, nil
}

// Run trains for the given number of epochs, stopping early (with
// ctx.Err()) when ctx is cancelled.
func (tr *Trainer) Run(ctx context.Context, p train.Provider, epochs int) ([]Stats, error) {
	out := make([]Stats, 0, epochs)
	for e := 0; e < epochs; e++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		st, err := tr.RunEpoch(ctx, p, e)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Losses returns the recorded per-epoch mean losses.
func (tr *Trainer) Losses() []float64 {
	out := make([]float64, 0, len(tr.EpochStats))
	for _, s := range tr.EpochStats {
		out = append(out, s.MeanLoss)
	}
	return out
}

// OperatingPoint returns the trainer's measured optimization operating
// point: the P1 near-zero sparsity accumulated over every epoch so far
// (0 when MS1 is off) and the latest epoch's planned skip fraction
// (0 when MS2 is off). Both analytic cost models — footprint and DRAM
// traffic — are parameterized by exactly these two numbers.
func (tr *Trainer) OperatingPoint() (p1Sparsity, skipFrac float64) {
	var lastSkip float64
	var prune reorder.PruneStats
	for _, s := range tr.EpochStats {
		prune = prune.Add(s.PruneStats)
		lastSkip = s.SkipFrac
	}
	if tr.Cfg.EnableMS1 {
		p1Sparsity = prune.Frac()
	}
	if tr.Cfg.EnableMS2 {
		skipFrac = lastSkip
	}
	return p1Sparsity, skipFrac
}

// FootprintParams converts the trainer's measured behaviour into the
// memplan/trace parameters, so the analytic models report this exact
// training run's operating point.
func (tr *Trainer) FootprintParams() memplan.Params {
	p := memplan.Params{}
	sparsity, skipFrac := tr.OperatingPoint()
	if tr.Cfg.EnableMS1 {
		p.P1KeepRatio = memplan.FromSparsity(sparsity)
	}
	p.SkipFrac = skipFrac
	return p
}

// FootprintMode returns the memplan mode matching the configuration.
func (tr *Trainer) FootprintMode() memplan.Mode {
	switch {
	case tr.Cfg.EnableMS1 && tr.Cfg.EnableMS2:
		return memplan.Combined
	case tr.Cfg.EnableMS1:
		return memplan.MS1
	case tr.Cfg.EnableMS2:
		return memplan.MS2
	}
	return memplan.Baseline
}
