// Package core integrates η-LSTM's software optimizations into a
// complete training loop — the cross-stack "η-LSTM" of the paper, on
// the software side. It composes:
//
//   - MS1 (internal/reorder): the FW pass computes and near-zero-prunes
//     the BP-EW-P1 products instead of storing raw gates;
//   - MS2 (internal/skip): per-epoch skip plans from the Eq. 4
//     magnitude predictor gated by the Eq. 5 loss prediction, with
//     convergence-aware gradient rescaling;
//   - the bookkeeping (footprint, data movement, skip statistics) the
//     experiment harnesses report.
//
// The hardware side (internal/arch) consumes the same optimization
// parameters; FootprintParams/FootprintMode bridge the two by exposing
// this training run's measured operating point to the cost models.
package core

import (
	"fmt"
	"math"

	"etalstm/internal/lstm"
	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/reorder"
	"etalstm/internal/skip"
	"etalstm/internal/train"
)

// Config selects which optimizations run and their knobs.
type Config struct {
	// EnableMS1 turns on execution reordering + P1 pruning.
	EnableMS1 bool
	// EnableMS2 turns on BP-cell skipping.
	EnableMS2 bool

	// PruneThreshold is MS1's near-zero cutoff (0 = 0.1, the paper's
	// operating point).
	PruneThreshold float32
	// SkipThreshold is MS2's relative significance cutoff used to set
	// the absolute bar at calibration (0 = skip.DefaultThreshold).
	SkipThreshold float64
	// MaxSkipFrac caps the skipped share per layer (0 = skip default).
	MaxSkipFrac float64
	// WarmupEpochs run unskipped while Eq. 5 gathers loss history
	// (the paper's "first three epochs will not perform the
	// prediction"). 0 means 3.
	WarmupEpochs int
}

func (c Config) warmup() int {
	if c.WarmupEpochs == 0 {
		return 3
	}
	return c.WarmupEpochs
}

// Stats accumulates what the optimizations did across an epoch.
type Stats struct {
	Epoch        int
	MeanLoss     float64
	PruneStats   reorder.PruneStats
	SkippedCells int
	TotalCells   int
	SkipFrac     float64
	ScaleApplied bool
}

// Trainer is the η-LSTM training driver.
type Trainer struct {
	Net  *model.Network
	Opt  train.Optimizer
	Clip float64
	Cfg  Config

	history   skip.LossHistory
	predictor *skip.Predictor
	// absBar is the calibrated absolute significance threshold; set
	// after the first epoch's magnitude calibration.
	absBar float64

	// EpochStats records per-epoch optimization behaviour.
	EpochStats []Stats
}

// New builds an η-LSTM trainer.
func New(net *model.Network, opt train.Optimizer, clip float64, cfg Config) *Trainer {
	return &Trainer{
		Net: net, Opt: opt, Clip: clip, Cfg: cfg,
		predictor: skip.NewPredictor(net.Cfg.Loss, net.Cfg.Layers, net.Cfg.SeqLen),
	}
}

// baseStore is the storage mode for executed cells.
func (tr *Trainer) baseStore() model.CellStore {
	if tr.Cfg.EnableMS1 {
		return model.StoreP1
	}
	return model.StoreRaw
}

// planFor builds the epoch's skip plan (or a no-skip plan during
// warmup / when MS2 is off).
func (tr *Trainer) planFor(epoch int) *skip.Plan {
	cfg := tr.Net.Cfg
	if !tr.Cfg.EnableMS2 || epoch < tr.Cfg.warmup() || tr.absBar <= 0 {
		return skip.NoSkip(cfg.Layers, cfg.SeqLen, tr.baseStore())
	}
	predLoss, ok := tr.history.Predict()
	if !ok {
		predLoss = tr.history.Last()
	}
	return skip.Build(tr.predictor, predLoss, skip.Config{
		Threshold:         tr.Cfg.SkipThreshold,
		AbsoluteThreshold: tr.absBar,
		MaxFrac:           tr.Cfg.MaxSkipFrac,
		Base:              tr.baseStore(),
	})
}

// RunEpoch trains one epoch over p. During epoch 0 it calibrates the
// Eq. 4 predictor's α from observed per-cell gradient magnitudes and
// fixes the absolute significance bar.
func (tr *Trainer) RunEpoch(p train.Provider, epoch int) (Stats, error) {
	if tr.Net == nil || tr.Opt == nil {
		return Stats{}, fmt.Errorf("core: Trainer requires Net and Opt")
	}
	cfg := tr.Net.Cfg
	plan := tr.planFor(epoch)
	policy := plan.Policy()

	st := Stats{Epoch: epoch, SkipFrac: plan.SkippedFrac()}

	calibrating := tr.Cfg.EnableMS2 && epoch == 0
	var observed [][]float64
	if calibrating {
		observed = make([][]float64, cfg.Layers)
		for l := range observed {
			observed[l] = make([]float64, cfg.SeqLen)
		}
	}

	var totalLoss float64
	batches := 0
	for b := 0; b < p.NumBatches(); b++ {
		batch := p.Batch(b)
		res, err := tr.Net.Forward(batch.Inputs, batch.Targets, policy)
		if err != nil {
			return st, fmt.Errorf("core: epoch %d batch %d forward: %w", epoch, b, err)
		}
		if math.IsNaN(res.Loss) || math.IsInf(res.Loss, 0) {
			return st, fmt.Errorf("core: epoch %d batch %d: non-finite loss %v (diverged; lower the learning rate)",
				epoch, b, res.Loss)
		}

		if tr.Cfg.EnableMS1 {
			// MS1's pruning: the approximation the compressed store
			// introduces, applied where the compression module would.
			pcfg := reorder.Config{Threshold: tr.Cfg.PruneThreshold}
			for l := range res.P1 {
				for t := range res.P1[l] {
					if p1 := res.P1[l][t]; p1 != nil {
						st.PruneStats = st.PruneStats.Add(reorder.PruneInPlace(p1, pcfg))
					}
				}
			}
		}

		grads := tr.Net.NewGradients()
		opts := model.BackwardOpts{}
		if calibrating {
			opts.OnCell = func(l, t int, cell *lstm.Grads) {
				observed[l][t] += cell.AbsSum()
			}
		}
		if err := tr.Net.Backward(res, policy, grads, opts); err != nil {
			return st, fmt.Errorf("core: epoch %d batch %d backward: %w", epoch, b, err)
		}

		if plan.SkippedFrac() > 0 {
			if err := plan.ApplyScaling(grads); err != nil {
				return st, err
			}
			st.ScaleApplied = true
		}
		if tr.Clip > 0 {
			train.ClipGradients(grads, tr.Clip)
		}
		tr.Opt.Step(tr.Net, grads)

		totalLoss += res.Loss
		batches++
		st.SkippedCells += grads.SkippedCells
		st.TotalCells += cfg.Cells()
	}

	if batches > 0 {
		st.MeanLoss = totalLoss / float64(batches)
	}
	tr.history.Record(st.MeanLoss)

	if calibrating {
		for l := range observed {
			for t := range observed[l] {
				observed[l][t] /= float64(batches)
			}
		}
		tr.predictor.Calibrate(st.MeanLoss, observed)
		// The absolute bar: SkipThreshold × the largest calibrated
		// magnitude. Cells predicted below it are insignificant.
		th := tr.Cfg.SkipThreshold
		if th == 0 {
			th = skip.DefaultThreshold
		}
		mx := 0.0
		for l := 0; l < cfg.Layers; l++ {
			for t := 0; t < cfg.SeqLen; t++ {
				if m := tr.predictor.Magnitude(st.MeanLoss, l, t); m > mx {
					mx = m
				}
			}
		}
		tr.absBar = th * mx
	}

	tr.EpochStats = append(tr.EpochStats, st)
	return st, nil
}

// Run trains for the given number of epochs.
func (tr *Trainer) Run(p train.Provider, epochs int) ([]Stats, error) {
	out := make([]Stats, 0, epochs)
	for e := 0; e < epochs; e++ {
		st, err := tr.RunEpoch(p, e)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Losses returns the recorded per-epoch mean losses.
func (tr *Trainer) Losses() []float64 {
	out := make([]float64, 0, len(tr.EpochStats))
	for _, s := range tr.EpochStats {
		out = append(out, s.MeanLoss)
	}
	return out
}

// FootprintParams converts the trainer's measured behaviour into the
// memplan/trace parameters, so the analytic models report this exact
// training run's operating point.
func (tr *Trainer) FootprintParams() memplan.Params {
	p := memplan.Params{}
	var lastSkip float64
	var prune reorder.PruneStats
	for _, s := range tr.EpochStats {
		prune = prune.Add(s.PruneStats)
		lastSkip = s.SkipFrac
	}
	if tr.Cfg.EnableMS1 {
		p.P1KeepRatio = memplan.FromSparsity(prune.Frac())
	}
	if tr.Cfg.EnableMS2 {
		p.SkipFrac = lastSkip
	}
	return p
}

// FootprintMode returns the memplan mode matching the configuration.
func (tr *Trainer) FootprintMode() memplan.Mode {
	switch {
	case tr.Cfg.EnableMS1 && tr.Cfg.EnableMS2:
		return memplan.Combined
	case tr.Cfg.EnableMS1:
		return memplan.MS1
	case tr.Cfg.EnableMS2:
		return memplan.MS2
	}
	return memplan.Baseline
}
