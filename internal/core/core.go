// Package core integrates η-LSTM's software optimizations into a
// complete training loop — the cross-stack "η-LSTM" of the paper, on
// the software side. It composes:
//
//   - MS1 (internal/reorder): the FW pass computes and near-zero-prunes
//     the BP-EW-P1 products instead of storing raw gates;
//   - MS2 (internal/skip): per-epoch skip plans from the Eq. 4
//     magnitude predictor gated by the Eq. 5 loss prediction, with
//     convergence-aware gradient rescaling;
//   - the bookkeeping (footprint, data movement, skip statistics) the
//     experiment harnesses report.
//
// The hardware side (internal/arch) consumes the same optimization
// parameters; FootprintParams/FootprintMode bridge the two by exposing
// this training run's measured operating point to the cost models.
package core

import (
	"context"
	"fmt"
	"math"

	"etalstm/internal/lstm"
	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/parallel"
	"etalstm/internal/reorder"
	"etalstm/internal/skip"
	"etalstm/internal/train"
)

// Config selects which optimizations run and their knobs.
type Config struct {
	// EnableMS1 turns on execution reordering + P1 pruning.
	EnableMS1 bool
	// EnableMS2 turns on BP-cell skipping.
	EnableMS2 bool

	// PruneThreshold is MS1's near-zero cutoff (0 = 0.1, the paper's
	// operating point).
	PruneThreshold float32
	// SkipThreshold is MS2's relative significance cutoff used to set
	// the absolute bar at calibration (0 = skip.DefaultThreshold).
	SkipThreshold float64
	// MaxSkipFrac caps the skipped share per layer (0 = skip default).
	MaxSkipFrac float64
	// WarmupEpochs run unskipped while Eq. 5 gathers loss history
	// (the paper's "first three epochs will not perform the
	// prediction"). 0 means 3.
	WarmupEpochs int
}

func (c Config) warmup() int {
	if c.WarmupEpochs == 0 {
		return 3
	}
	return c.WarmupEpochs
}

// Stats accumulates what the optimizations did across an epoch.
type Stats struct {
	Epoch        int
	MeanLoss     float64
	PruneStats   reorder.PruneStats
	SkippedCells int
	TotalCells   int
	SkipFrac     float64
	ScaleApplied bool
}

// Trainer is the η-LSTM training driver.
//
// Scratch memory: serial runs (Workers <= 1) execute every batch on
// Net, whose embedded tensor.Workspace is therefore reused across the
// whole run — steady-state epochs recycle the same FW/BP buffers
// instead of reallocating them. Data-parallel runs give each replica
// clone a private workspace (see internal/parallel), so no arena is
// ever shared between goroutines.
type Trainer struct {
	Net  *model.Network
	Opt  train.Optimizer
	Clip float64 // max gradient L2 norm; <= 0 disables clipping
	Cfg  Config

	// Workers is the data-parallel replica count. <= 1 runs the classic
	// serial loop (one optimizer step per minibatch); > 1 shards each
	// epoch's minibatches across that many replica workers
	// (internal/parallel) with one optimizer step per group of Workers
	// batches, gradients merged by a deterministic tree all-reduce.
	Workers int
	// Reducer applies merged gradients (averaging, clipping, optimizer
	// step). nil selects train.ClipStep{Opt, Clip}.
	Reducer train.Reducer

	history   skip.LossHistory
	predictor *skip.Predictor
	// absBar is the calibrated absolute significance threshold; set
	// after the first epoch's magnitude calibration.
	absBar float64
	// engine is the lazily-built data-parallel engine (Workers > 1).
	engine *parallel.Engine

	// EpochStats records per-epoch optimization behaviour.
	EpochStats []Stats
}

// New builds an η-LSTM trainer.
func New(net *model.Network, opt train.Optimizer, clip float64, cfg Config) *Trainer {
	return &Trainer{
		Net: net, Opt: opt, Clip: clip, Cfg: cfg,
		predictor: skip.NewPredictor(net.Cfg.Loss, net.Cfg.Layers, net.Cfg.SeqLen),
	}
}

// reducer returns the configured reducer or the default clip-then-step.
func (tr *Trainer) reducer() train.Reducer {
	if tr.Reducer != nil {
		return tr.Reducer
	}
	return train.ClipStep{Opt: tr.Opt, Clip: tr.Clip}
}

// baseStore is the storage mode for executed cells.
func (tr *Trainer) baseStore() model.CellStore {
	if tr.Cfg.EnableMS1 {
		return model.StoreP1
	}
	return model.StoreRaw
}

// planFor builds the epoch's skip plan (or a no-skip plan during
// warmup / when MS2 is off).
func (tr *Trainer) planFor(epoch int) *skip.Plan {
	cfg := tr.Net.Cfg
	if !tr.Cfg.EnableMS2 || epoch < tr.Cfg.warmup() || tr.absBar <= 0 {
		return skip.NoSkip(cfg.Layers, cfg.SeqLen, tr.baseStore())
	}
	predLoss, ok := tr.history.Predict()
	if !ok {
		predLoss = tr.history.Last()
	}
	return skip.Build(tr.predictor, predLoss, skip.Config{
		Threshold:         tr.Cfg.SkipThreshold,
		AbsoluteThreshold: tr.absBar,
		MaxFrac:           tr.Cfg.MaxSkipFrac,
		Base:              tr.baseStore(),
	})
}

// batchFn builds the per-minibatch FW+BP closure for one epoch: run
// forward under the epoch's storage policy, apply MS1's near-zero
// pruning, backpropagate (collecting calibration magnitudes when
// requested), and apply MS2's convergence-aware scaling. The same
// closure drives both the serial loop and the data-parallel engine, so
// the two paths share every floating-point operation.
func (tr *Trainer) batchFn(epoch int, plan *skip.Plan, policy model.StoragePolicy, calibrating bool) parallel.BatchFn {
	return func(net *model.Network, batch train.Batch, b int) (parallel.BatchResult, error) {
		var out parallel.BatchResult
		res, err := net.Forward(batch.Inputs, batch.Targets, policy)
		if err != nil {
			return out, fmt.Errorf("core: epoch %d batch %d forward: %w", epoch, b, err)
		}
		if math.IsNaN(res.Loss) || math.IsInf(res.Loss, 0) {
			return out, fmt.Errorf("core: epoch %d batch %d: non-finite loss %v (diverged; lower the learning rate)",
				epoch, b, res.Loss)
		}
		out.Loss = res.Loss

		if tr.Cfg.EnableMS1 {
			// MS1's pruning: the approximation the compressed store
			// introduces, applied where the compression module would.
			pcfg := reorder.Config{Threshold: tr.Cfg.PruneThreshold}
			for l := range res.P1 {
				for t := range res.P1[l] {
					if p1 := res.P1[l][t]; p1 != nil {
						out.Prune = out.Prune.Add(reorder.PruneInPlace(p1, pcfg))
					}
				}
			}
		}

		grads := net.NewGradients()
		opts := model.BackwardOpts{}
		if calibrating {
			cfg := net.Cfg
			out.Observed = make([][]float64, cfg.Layers)
			for l := range out.Observed {
				out.Observed[l] = make([]float64, cfg.SeqLen)
			}
			opts.OnCell = func(l, t int, cell *lstm.Grads) {
				out.Observed[l][t] += cell.AbsSum()
			}
		}
		if err := net.Backward(res, policy, grads, opts); err != nil {
			return out, fmt.Errorf("core: epoch %d batch %d backward: %w", epoch, b, err)
		}

		if plan.SkippedFrac() > 0 {
			if err := plan.ApplyScaling(grads); err != nil {
				return out, err
			}
		}
		out.Grads = grads
		return out, nil
	}
}

// RunEpoch trains one epoch over p. During epoch 0 it calibrates the
// Eq. 4 predictor's α from observed per-cell gradient magnitudes and
// fixes the absolute significance bar. ctx cancels the epoch between
// minibatch groups; the returned error is then ctx.Err() and no further
// optimizer steps are applied.
func (tr *Trainer) RunEpoch(ctx context.Context, p train.Provider, epoch int) (Stats, error) {
	if tr.Net == nil || tr.Opt == nil {
		return Stats{}, fmt.Errorf("core: Trainer requires Net and Opt")
	}
	cfg := tr.Net.Cfg
	plan := tr.planFor(epoch)
	policy := plan.Policy()

	st := Stats{Epoch: epoch, SkipFrac: plan.SkippedFrac()}

	calibrating := tr.Cfg.EnableMS2 && epoch == 0
	fn := tr.batchFn(epoch, plan, policy, calibrating)

	var epochRes parallel.EpochResult
	var err error
	if tr.Workers > 1 {
		if tr.engine == nil || tr.engine.Workers() != tr.Workers {
			tr.engine = parallel.New(tr.Net, tr.Workers, tr.reducer())
		}
		epochRes, err = tr.engine.RunEpoch(ctx, p, fn)
	} else {
		epochRes, err = tr.runSerial(ctx, p, fn)
	}
	st.PruneStats = epochRes.Prune
	st.SkippedCells = epochRes.SkippedCells
	st.TotalCells = epochRes.Batches * cfg.Cells()
	if plan.SkippedFrac() > 0 && epochRes.Batches > 0 {
		st.ScaleApplied = true
	}
	if err != nil {
		return st, err
	}

	batches := epochRes.Batches
	if batches > 0 {
		st.MeanLoss = epochRes.TotalLoss / float64(batches)
	}
	tr.history.Record(st.MeanLoss)

	if calibrating && epochRes.Observed != nil {
		observed := epochRes.Observed
		for l := range observed {
			for t := range observed[l] {
				observed[l][t] /= float64(batches)
			}
		}
		tr.predictor.Calibrate(st.MeanLoss, observed)
		// The absolute bar: SkipThreshold × the largest calibrated
		// magnitude. Cells predicted below it are insignificant.
		th := tr.Cfg.SkipThreshold
		if th == 0 {
			th = skip.DefaultThreshold
		}
		mx := 0.0
		for l := 0; l < cfg.Layers; l++ {
			for t := 0; t < cfg.SeqLen; t++ {
				if m := tr.predictor.Magnitude(st.MeanLoss, l, t); m > mx {
					mx = m
				}
			}
		}
		tr.absBar = th * mx
	}

	tr.EpochStats = append(tr.EpochStats, st)
	return st, nil
}

// runSerial is the classic one-step-per-minibatch loop: every batch
// runs on the master network and applies through the reducer with a
// replica count of one, preserving the seed trainer's exact float
// operation order.
func (tr *Trainer) runSerial(ctx context.Context, p train.Provider, fn parallel.BatchFn) (parallel.EpochResult, error) {
	var res parallel.EpochResult
	red := tr.reducer()
	for b := 0; b < p.NumBatches(); b++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		r, err := fn(tr.Net, p.Batch(b), b)
		if err != nil {
			return res, err
		}
		red.Apply(tr.Net, r.Grads, 1)
		res.Batches++
		res.TotalLoss += r.Loss
		res.Prune = res.Prune.Add(r.Prune)
		res.SkippedCells += r.Grads.SkippedCells
		res.ExecutedCells += r.Grads.ExecutedCells
		if r.Observed != nil {
			if res.Observed == nil {
				res.Observed = r.Observed
			} else {
				for l := range r.Observed {
					for t := range r.Observed[l] {
						res.Observed[l][t] += r.Observed[l][t]
					}
				}
			}
		}
	}
	return res, nil
}

// Run trains for the given number of epochs, stopping early (with
// ctx.Err()) when ctx is cancelled.
func (tr *Trainer) Run(ctx context.Context, p train.Provider, epochs int) ([]Stats, error) {
	out := make([]Stats, 0, epochs)
	for e := 0; e < epochs; e++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		st, err := tr.RunEpoch(ctx, p, e)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Losses returns the recorded per-epoch mean losses.
func (tr *Trainer) Losses() []float64 {
	out := make([]float64, 0, len(tr.EpochStats))
	for _, s := range tr.EpochStats {
		out = append(out, s.MeanLoss)
	}
	return out
}

// FootprintParams converts the trainer's measured behaviour into the
// memplan/trace parameters, so the analytic models report this exact
// training run's operating point.
func (tr *Trainer) FootprintParams() memplan.Params {
	p := memplan.Params{}
	var lastSkip float64
	var prune reorder.PruneStats
	for _, s := range tr.EpochStats {
		prune = prune.Add(s.PruneStats)
		lastSkip = s.SkipFrac
	}
	if tr.Cfg.EnableMS1 {
		p.P1KeepRatio = memplan.FromSparsity(prune.Frac())
	}
	if tr.Cfg.EnableMS2 {
		p.SkipFrac = lastSkip
	}
	return p
}

// FootprintMode returns the memplan mode matching the configuration.
func (tr *Trainer) FootprintMode() memplan.Mode {
	switch {
	case tr.Cfg.EnableMS1 && tr.Cfg.EnableMS2:
		return memplan.Combined
	case tr.Cfg.EnableMS1:
		return memplan.MS1
	case tr.Cfg.EnableMS2:
		return memplan.MS2
	}
	return memplan.Baseline
}
