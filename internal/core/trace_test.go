package core

import (
	"context"
	"strconv"
	"testing"

	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
)

// withTracer installs a process-default tracer for the test and
// restores the disabled state afterwards.
func withTracer(t *testing.T, opts rtrace.Options) *rtrace.Tracer {
	t.Helper()
	prev := rtrace.Default()
	tr := rtrace.New(opts)
	rtrace.SetDefault(tr)
	t.Cleanup(func() { rtrace.SetDefault(prev) })
	return tr
}

// TestSerialEpochStepTraces checks the serial trainer emits one
// "train.step" span per optimizer step with the FW/BP phase wall time
// folded in as children — without RecordPhases being set, since an
// installed tracer alone must activate phase recording.
func TestSerialEpochStepTraces(t *testing.T) {
	rec := withTracer(t, rtrace.Options{Process: "trainer"})
	bench, prov := scaledBench(t, "IMDB")
	tr := newTrainer(t, bench, Config{EnableMS1: true}, 1)
	if _, err := tr.RunEpoch(context.Background(), prov, 0); err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans()
	steps := make(map[string]rtrace.SpanData) // span id -> step span
	for _, sd := range spans {
		if sd.Name == "train.step" {
			steps[sd.SpanID.String()] = sd
		}
	}
	if len(steps) != prov.NumBatches() {
		t.Fatalf("recorded %d train.step spans, want %d", len(steps), prov.NumBatches())
	}
	// Every step span carries its batch index and owns phase children.
	phaseKids := make(map[string]map[string]bool) // parent span id -> phase names
	for _, sd := range spans {
		if _, ok := steps[sd.Parent.String()]; ok && sd.Name != "train.step" {
			m := phaseKids[sd.Parent.String()]
			if m == nil {
				m = make(map[string]bool)
				phaseKids[sd.Parent.String()] = m
			}
			m[sd.Name] = true
		}
	}
	for id, sd := range steps {
		batch := ""
		for _, a := range sd.Attrs {
			if a.Key == "batch" {
				batch = a.Value
			}
		}
		if _, err := strconv.Atoi(batch); err != nil {
			t.Fatalf("train.step span lacks a batch attr: %+v", sd.Attrs)
		}
		kids := phaseKids[id]
		if !kids[obs.PhaseFW.String()] {
			t.Fatalf("step span %s has no %s phase child (children: %v)", id, obs.PhaseFW, kids)
		}
		if !kids[obs.PhaseOptimizer.String()] {
			t.Fatalf("step span %s has no %s phase child (children: %v)", id, obs.PhaseOptimizer, kids)
		}
	}
}

// TestParallelEpochStepTraces checks the data-parallel engine's group
// steps trace too: one span per optimizer step (batch group), with
// per-replica phase children and the coordinator-side all-reduce fold.
func TestParallelEpochStepTraces(t *testing.T) {
	rec := withTracer(t, rtrace.Options{Process: "trainer"})
	bench, prov := scaledBench(t, "IMDB")
	tr := newTrainer(t, bench, Config{}, 1)
	tr.Workers = 2
	if _, err := tr.RunEpoch(context.Background(), prov, 0); err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans()
	var stepIDs []rtrace.SpanID
	for _, sd := range spans {
		if sd.Name == "train.step" {
			stepIDs = append(stepIDs, sd.SpanID)
		}
	}
	wantGroups := (prov.NumBatches() + 1) / 2
	if len(stepIDs) != wantGroups {
		t.Fatalf("recorded %d group step spans, want %d", len(stepIDs), wantGroups)
	}
	// At least one step span must carry a per-replica FW phase child for
	// each of the two replicas.
	replicas := make(map[string]bool)
	for _, sd := range spans {
		if sd.Name != obs.PhaseFW.String() {
			continue
		}
		for _, a := range sd.Attrs {
			if a.Key == "replica" {
				replicas[a.Value] = true
			}
		}
	}
	if !replicas["0"] || !replicas["1"] {
		t.Fatalf("per-replica FW phase children missing (saw replicas %v)", replicas)
	}
}
