package core

import (
	"context"
	"strings"
	"testing"

	"etalstm/internal/memplan"
	"etalstm/internal/obs"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

// budgetBench is a longer-sequence shrink of IMDB: at SeqLen 48 the
// per-step storage dominates the fixed checkpoint-column overhead, so a
// quarter of the full-storage peak is a feasible (and binding) budget.
func budgetBench(t *testing.T) (workload.Benchmark, train.Provider) {
	t.Helper()
	b, err := workload.ByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	s := b.Scaled(64, 48, 4)
	return s, s.Provider(3, 21)
}

// TestBudgetedTrainingBitwiseSerial is the tentpole's core promise:
// with Workers == 1, a trainer under a tight memory budget produces the
// exact per-epoch losses of the full-storage trainer — checkpointed
// BPTT replays FW work but never changes a float.
func TestBudgetedTrainingBitwiseSerial(t *testing.T) {
	for _, cfg := range []Config{{}, {EnableMS1: true}} {
		name := "baseline"
		if cfg.EnableMS1 {
			name = "ms1"
		}
		t.Run(name, func(t *testing.T) {
			bench, provA := budgetBench(t)
			_, provB := budgetBench(t)

			full := newTrainer(t, bench, cfg, 7)
			mode := full.FootprintMode()
			pl := memplan.Plan(bench.Cfg, mode, 0)

			budgeted := cfg
			budgeted.MemoryBudget = pl.FullPeak / 4
			bt := newTrainer(t, bench, budgeted, 7)

			statsF, err := full.Run(context.Background(), provA, 4)
			if err != nil {
				t.Fatal(err)
			}
			statsB, err := bt.Run(context.Background(), provB, 4)
			if err != nil {
				t.Fatal(err)
			}
			for e := range statsF {
				if statsF[e].MeanLoss != statsB[e].MeanLoss {
					t.Fatalf("epoch %d: full %v vs budgeted %v (must be bitwise)",
						e, statsF[e].MeanLoss, statsB[e].MeanLoss)
				}
				if statsF[e].PruneStats != statsB[e].PruneStats {
					t.Fatalf("epoch %d: prune stats diverged: %+v vs %+v",
						e, statsF[e].PruneStats, statsB[e].PruneStats)
				}
			}
			if statsF[0].PeakStoredBytes != 0 || statsF[0].RecomputedCells != 0 {
				t.Fatal("full-storage trainer must report zero checkpoint stats")
			}
			last := statsB[len(statsB)-1]
			if last.RecomputedCells == 0 {
				t.Fatal("budgeted trainer never recomputed — budget not binding?")
			}
			if last.PeakStoredBytes <= 0 || last.PeakStoredBytes > budgeted.MemoryBudget {
				t.Fatalf("measured peak %d B outside budget %d B",
					last.PeakStoredBytes, budgeted.MemoryBudget)
			}
			if got := bt.Placement(); got.FullStorage() || !got.Feasible {
				t.Fatalf("budgeted trainer placement unexpectedly %+v", got)
			}
		})
	}
}

// TestBudgetedTrainingWorkers runs the budgeted trainer data-parallel:
// every replica checkpoints independently, the epoch peak folds as the
// max over batches, and the losses still match the budgeted serial run
// bitwise (Workers only changes the optimizer step cadence — and with
// one batch group per epoch, not even that).
func TestBudgetedTrainingWorkers(t *testing.T) {
	bench, provA := budgetBench(t)
	_, provB := budgetBench(t)
	pl := memplan.Plan(bench.Cfg, memplan.Baseline, 0)

	cfg := Config{MemoryBudget: pl.FullPeak / 4}
	serial := newTrainer(t, bench, cfg, 9)
	par := newTrainer(t, bench, cfg, 9)
	par.Workers = 3 // provider has 3 batches -> one group, one step

	stS, err := serial.RunEpoch(context.Background(), provA, 0)
	if err != nil {
		t.Fatal(err)
	}
	stP, err := par.RunEpoch(context.Background(), provB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stS.PeakStoredBytes != stP.PeakStoredBytes {
		t.Fatalf("peak stored diverged: serial %d vs parallel %d",
			stS.PeakStoredBytes, stP.PeakStoredBytes)
	}
	if stS.RecomputedCells != stP.RecomputedCells {
		t.Fatalf("recomputed cells diverged: serial %d vs parallel %d",
			stS.RecomputedCells, stP.RecomputedCells)
	}
	if stP.PeakStoredBytes > cfg.MemoryBudget {
		t.Fatalf("parallel peak %d B exceeds budget %d B", stP.PeakStoredBytes, cfg.MemoryBudget)
	}
	if stP.RecomputeRatio() <= 0 {
		t.Fatal("parallel budgeted epoch reported zero recompute ratio")
	}
}

// TestBudgetModeledVsMeasuredPeak reconciles memplan's resident-byte
// model against the byte tracker's measurement through the new obs
// gauges — the footprint small fix: the modeled peak must sit within
// 10% of what the trainer actually stored.
func TestBudgetModeledVsMeasuredPeak(t *testing.T) {
	for _, ms1 := range []bool{false, true} {
		bench, prov := budgetBench(t)
		cfg := Config{EnableMS1: ms1}
		mode := memplan.Baseline
		if ms1 {
			mode = memplan.MS1
		}
		pl := memplan.Plan(bench.Cfg, mode, 0)
		cfg.MemoryBudget = pl.FullPeak / 4

		tr := newTrainer(t, bench, cfg, 11)
		if _, err := tr.RunEpoch(context.Background(), prov, 0); err != nil {
			t.Fatal(err)
		}

		snap := obs.Default.Snapshot()
		measured := snap[obs.MetricPeakStoredBytes]
		predicted := float64(tr.Placement().PredictedPeak)
		if measured <= 0 {
			t.Fatalf("ms1=%v: peak gauge not set", ms1)
		}
		rel := (predicted - measured) / measured
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.10 {
			t.Fatalf("ms1=%v: modeled peak %v vs measured %v diverge by %.1f%% (>10%%)",
				ms1, predicted, measured, 100*rel)
		}
		if snap[obs.MetricCkptColumns] != float64(len(tr.Placement().Boundaries)) {
			t.Fatalf("ms1=%v: ckpt column gauge %v != placement columns %d",
				ms1, snap[obs.MetricCkptColumns], len(tr.Placement().Boundaries))
		}
		if snap[obs.MetricRecomputeRatio] <= 0 {
			t.Fatalf("ms1=%v: recompute ratio gauge not set", ms1)
		}
		if snap[obs.MetricCkptStoredBytes] != float64(tr.Placement().CheckpointBytes) {
			t.Fatalf("ms1=%v: ckpt bytes gauge %v != placement %d",
				ms1, snap[obs.MetricCkptStoredBytes], tr.Placement().CheckpointBytes)
		}
	}
}

// TestBudgetInfeasibleErrors: a budget no placement can satisfy fails
// fast with a diagnostic instead of silently overshooting.
func TestBudgetInfeasibleErrors(t *testing.T) {
	bench, prov := budgetBench(t)
	tr := newTrainer(t, bench, Config{MemoryBudget: 64}, 13)
	_, err := tr.RunEpoch(context.Background(), prov, 0)
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("want infeasible-budget error, got %v", err)
	}
}

// TestBudgetMS2Composes: the checkpointed path and MS2's skip plan
// run together — calibration, skipping and rescaling all happen on the
// budgeted trainer and it still learns.
func TestBudgetMS2Composes(t *testing.T) {
	bench, prov := budgetBench(t)
	pl := memplan.Plan(bench.Cfg, memplan.MS2, 0)
	cfg := Config{EnableMS2: true, WarmupEpochs: 3, MemoryBudget: pl.FullPeak / 4}
	tr := newTrainer(t, bench, cfg, 15)
	stats, err := tr.Run(context.Background(), prov, 8)
	if err != nil {
		t.Fatal(err)
	}
	skipped := false
	for _, st := range stats {
		if st.PeakStoredBytes > cfg.MemoryBudget {
			t.Fatalf("epoch %d peak %d B exceeds budget %d B", st.Epoch, st.PeakStoredBytes, cfg.MemoryBudget)
		}
		if st.SkipFrac > 0 {
			skipped = true
		}
	}
	if !skipped {
		t.Fatal("MS2 never skipped under budget")
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatal("budgeted MS2 trainer failed to learn")
	}
}
