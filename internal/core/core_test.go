package core

import (
	"context"
	"math"
	"testing"

	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/train"
	"etalstm/internal/workload"
)

func scaledBench(t *testing.T, name string) (workload.Benchmark, train.Provider) {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s := b.Scaled(64, 12, 8)
	return s, s.Provider(3, 21)
}

func newTrainer(t *testing.T, bench workload.Benchmark, cfg Config, seed uint64) *Trainer {
	t.Helper()
	net, err := model.NewNetwork(bench.Cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return New(net, &train.Adam{LR: 0.01}, 5, cfg)
}

func TestBaselineModeTrains(t *testing.T) {
	bench, prov := scaledBench(t, "IMDB")
	tr := newTrainer(t, bench, Config{}, 1)
	stats, err := tr.Run(context.Background(), prov, 6)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatal("baseline mode failed to learn")
	}
	if stats[0].SkipFrac != 0 || stats[0].PruneStats.Elements != 0 {
		t.Fatal("baseline mode must not optimize")
	}
}

func TestMS1ModePrunesAndTrains(t *testing.T) {
	bench, prov := scaledBench(t, "IMDB")
	tr := newTrainer(t, bench, Config{EnableMS1: true}, 2)
	stats, err := tr.Run(context.Background(), prov, 6)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].PruneStats.Elements == 0 {
		t.Fatal("MS1 must prune P1 products")
	}
	if stats[0].PruneStats.Frac() <= 0.2 {
		t.Fatalf("P1 prune fraction %.3f implausibly low", stats[0].PruneStats.Frac())
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatal("MS1 mode failed to learn")
	}
}

func TestMS2ModeSkipsAfterWarmup(t *testing.T) {
	bench, prov := scaledBench(t, "IMDB")
	tr := newTrainer(t, bench, Config{EnableMS2: true, WarmupEpochs: 3}, 3)
	stats, err := tr.Run(context.Background(), prov, 8)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if stats[e].SkipFrac != 0 {
			t.Fatalf("epoch %d must not skip during warmup", e)
		}
	}
	skippedLater := false
	for e := 3; e < len(stats); e++ {
		if stats[e].SkipFrac > 0 {
			skippedLater = true
			if !stats[e].ScaleApplied {
				t.Fatal("skipping epochs must apply gradient scaling")
			}
		}
	}
	if !skippedLater {
		t.Fatal("MS2 never skipped after warmup")
	}
	if stats[len(stats)-1].MeanLoss >= stats[0].MeanLoss {
		t.Fatal("MS2 mode failed to learn")
	}
}

func TestCombinedModeTrains(t *testing.T) {
	bench, prov := scaledBench(t, "BABI")
	tr := newTrainer(t, bench, Config{EnableMS1: true, EnableMS2: true}, 4)
	stats, err := tr.Run(context.Background(), prov, 8)
	if err != nil {
		t.Fatal(err)
	}
	last := stats[len(stats)-1]
	if last.MeanLoss >= stats[0].MeanLoss {
		t.Fatal("combined mode failed to learn")
	}
	if last.PruneStats.Elements == 0 {
		t.Fatal("combined mode must prune")
	}
}

// TestAccuracyImpactSmall is the Table II claim in miniature: combined
// optimizations land within a few percent of the baseline's final loss
// on the same data and seeds.
func TestAccuracyImpactSmall(t *testing.T) {
	bench, prov := scaledBench(t, "IMDB")
	const epochs = 10

	base := newTrainer(t, bench, Config{}, 7)
	if _, err := base.Run(context.Background(), prov, epochs); err != nil {
		t.Fatal(err)
	}
	opt := newTrainer(t, bench, Config{EnableMS1: true, EnableMS2: true}, 7)
	if _, err := opt.Run(context.Background(), prov, epochs); err != nil {
		t.Fatal(err)
	}

	bl := base.Losses()[epochs-1]
	ol := opt.Losses()[epochs-1]
	// Relative tolerance with an absolute floor: once both runs are in
	// the noise floor (loss < 0.01), any ratio between them is noise.
	if math.Abs(bl-ol) > math.Max(0.15*bl, 0.01) {
		t.Fatalf("combined-MS final loss diverged: baseline %.4f vs optimized %.4f", bl, ol)
	}
}

// TestConvergenceSpeedPreserved: the per-epoch loss trajectory under
// combined optimizations tracks the baseline's (the paper's "no
// convergence speed issues").
func TestConvergenceSpeedPreserved(t *testing.T) {
	bench, prov := scaledBench(t, "WMT")
	const epochs = 8
	base := newTrainer(t, bench, Config{}, 9)
	if _, err := base.Run(context.Background(), prov, epochs); err != nil {
		t.Fatal(err)
	}
	opt := newTrainer(t, bench, Config{EnableMS1: true, EnableMS2: true}, 9)
	if _, err := opt.Run(context.Background(), prov, epochs); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		b, o := base.Losses()[e], opt.Losses()[e]
		if math.Abs(b-o) > 0.25*math.Max(b, 1e-9)+0.05 {
			t.Fatalf("epoch %d: optimized loss %.4f strays from baseline %.4f", e, o, b)
		}
	}
}

func TestFootprintParamsReflectRun(t *testing.T) {
	bench, prov := scaledBench(t, "BABI")
	tr := newTrainer(t, bench, Config{EnableMS1: true, EnableMS2: true}, 11)
	if _, err := tr.Run(context.Background(), prov, 6); err != nil {
		t.Fatal(err)
	}
	p := tr.FootprintParams()
	if p.P1KeepRatio <= 0 || p.P1KeepRatio >= 1.5 {
		t.Fatalf("P1KeepRatio: %v", p.P1KeepRatio)
	}
	if tr.FootprintMode() != memplan.Combined {
		t.Fatal("mode")
	}
	// The measured operating point must yield a real footprint saving
	// on the full-size geometry.
	full, _ := workload.ByName("BABI")
	red := memplan.Reduction(full.Cfg, memplan.Combined, p)
	if red <= 0.2 {
		t.Fatalf("combined footprint reduction %.3f too small", red)
	}
}

func TestFootprintModeMapping(t *testing.T) {
	bench, _ := scaledBench(t, "PTB")
	cases := map[memplan.Mode]Config{
		memplan.Baseline: {},
		memplan.MS1:      {EnableMS1: true},
		memplan.MS2:      {EnableMS2: true},
		memplan.Combined: {EnableMS1: true, EnableMS2: true},
	}
	for want, cfg := range cases {
		tr := newTrainer(t, bench, cfg, 12)
		if tr.FootprintMode() != want {
			t.Fatalf("mode for %+v: got %v want %v", cfg, tr.FootprintMode(), want)
		}
	}
}

func TestRunEpochRequiresNetOpt(t *testing.T) {
	tr := &Trainer{}
	bench, prov := scaledBench(t, "PTB")
	_ = bench
	if _, err := tr.RunEpoch(context.Background(), prov, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestCalibrationSetsAbsBar(t *testing.T) {
	bench, prov := scaledBench(t, "IMDB")
	tr := newTrainer(t, bench, Config{EnableMS2: true}, 13)
	if _, err := tr.RunEpoch(context.Background(), prov, 0); err != nil {
		t.Fatal(err)
	}
	if tr.absBar <= 0 {
		t.Fatal("epoch 0 must calibrate the absolute significance bar")
	}
	if tr.predictor.Alpha == 1 {
		t.Fatal("epoch 0 must calibrate α")
	}
}
