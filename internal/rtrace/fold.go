package rtrace

import (
	"time"

	"etalstm/internal/obs"
)

// FoldPhases turns an obs.Recorder delta (the phase wall time two
// snapshots bracket — one sweep, one optimizer step) into child spans
// of sp, stacked back to back from start in execution-phase order. The
// recorder measured real wall time; the stacking start offsets are an
// approximation (phases interleave per timestep), but the durations —
// the part the paper's breakdown argues from — are exact. kv attribute
// pairs land on every synthesized span.
func FoldPhases(sp *Span, start time.Time, d obs.PhaseSnapshot, kv ...string) {
	if sp == nil {
		return
	}
	at := start
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if d.N[p] == 0 {
			continue
		}
		dur := time.Duration(d.Ns[p])
		sp.RecordChild(p.String(), at, dur, kv...)
		at = at.Add(dur)
	}
}
