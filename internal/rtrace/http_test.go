package rtrace

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// newPipe gives the signal test an in-memory reader/writer pair with
// read deadlines.
func newPipe() (net.Conn, net.Conn, error) {
	pr, pw := net.Pipe()
	return pr, pw, nil
}

// buildTrace records a three-span trace and returns its id.
func buildTrace(t *testing.T, tr *Tracer) TraceID {
	t.Helper()
	root := tr.StartSpan("router.request")
	root.Attr("path", "/v1/infer")
	child := root.Child("serve.request")
	child.Event("enqueue")
	sweep := child.Child("serve.sweep")
	sweep.Finish()
	child.Finish()
	root.Finish()
	return root.TraceID()
}

func newMux(tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	h := tr.Handler()
	mux.Handle("GET /debug/traces", h)
	mux.Handle("GET /debug/traces/{id}", h)
	return mux
}

func TestHandlerListAndGet(t *testing.T) {
	tr := New(Options{Process: "replica-0"})
	tid := buildTrace(t, tr)
	mux := newMux(tr)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("list status %d", rec.Code)
	}
	var list ListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Process != "replica-0" || len(list.Traces) != 1 {
		t.Fatalf("list: %+v", list)
	}
	if list.Traces[0].TraceID != tid.String() || list.Traces[0].Spans != 3 {
		t.Fatalf("summary: %+v", list.Traces[0])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+tid.String(), nil))
	if rec.Code != 200 {
		t.Fatalf("get status %d: %s", rec.Code, rec.Body)
	}
	var tresp TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tresp); err != nil {
		t.Fatal(err)
	}
	if len(tresp.Spans) != 3 || len(tresp.Tree) != 1 {
		t.Fatalf("trace: %d spans %d roots", len(tresp.Spans), len(tresp.Tree))
	}
	root := tresp.Tree[0]
	if root.Name != "router.request" || root.Attrs["path"] != "/v1/infer" {
		t.Fatalf("root: %+v", root.WireSpan)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "serve.request" {
		t.Fatalf("tree shape: %+v", root.Children)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Name != "serve.sweep" {
		t.Fatal("sweep not nested under request")
	}
	if len(root.Children[0].Events) != 1 || root.Children[0].Events[0].Name != "enqueue" {
		t.Fatalf("events: %+v", root.Children[0].Events)
	}
}

func TestHandlerErrors(t *testing.T) {
	tr := New(Options{})
	mux := newMux(tr)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/zzzz", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed id: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	tid, _ := NewIDs()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+tid.String(), nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", rec.Code)
	}
}

func TestAssembleMergesProcessesAndOrphans(t *testing.T) {
	// Router and replica each contribute spans of one trace; the replica
	// span's parent (the router span) exists, a second replica span's
	// parent does not — it must surface as a root, not vanish.
	tid, _ := NewIDs()
	mk := func(name, span, parent, proc string, at int64) WireSpan {
		return WireSpan{
			TraceID: tid.String(), SpanID: span, Parent: parent,
			Process: proc, Name: name, Start: time.Unix(0, at),
		}
	}
	spans := []WireSpan{
		mk("replica.request", "bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa", "replica-0", 2),
		mk("router.request", "aaaaaaaaaaaaaaaa", "", "router", 1),
		mk("orphan", "cccccccccccccccc", "dddddddddddddddd", "replica-1", 3),
		mk("router.request", "aaaaaaaaaaaaaaaa", "", "router", 1), // duplicate merged away
	}
	roots := Assemble(spans)
	if len(roots) != 2 {
		t.Fatalf("want 2 roots, got %d", len(roots))
	}
	if roots[0].Name != "router.request" || roots[1].Name != "orphan" {
		t.Fatalf("roots: %q %q", roots[0].Name, roots[1].Name)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Process != "replica-0" {
		t.Fatalf("cross-process child lost: %+v", roots[0].Children)
	}
}

func TestDumpTo(t *testing.T) {
	var nilTr *Tracer
	var sb strings.Builder
	nilTr.DumpTo(&sb)
	if !strings.Contains(sb.String(), "disabled") {
		t.Fatalf("nil dump: %q", sb.String())
	}
	tr := New(Options{Process: "replica-1"})
	root := tr.StartSpan("serve.request")
	sweep := root.Child("serve.sweep")
	sweep.Event("shed")
	sweep.FinishErr(errors.New("poisoned"))
	root.Finish()
	sb.Reset()
	tr.DumpTo(&sb)
	out := sb.String()
	for _, want := range []string{
		"rtrace flight recorder", `process "replica-1"`, "2 spans",
		"trace " + root.TraceID().String(),
		"serve.request", "serve.sweep", `ERROR="poisoned"`, "!shed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Child indented one level deeper than root.
	if !strings.Contains(out, "    serve.sweep") {
		t.Fatalf("sweep not indented:\n%s", out)
	}
}

func TestDumpOnSignal(t *testing.T) {
	tr := New(Options{Process: "sig"})
	tr.StartSpan("s").Finish()
	pr, pw, err := newPipe()
	if err != nil {
		t.Fatal(err)
	}
	stop := tr.DumpOnSignal(pw)
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	pr.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := pr.Read(buf)
	if err != nil {
		t.Fatalf("no dump after SIGQUIT: %v", err)
	}
	if !strings.Contains(string(buf[:n]), "rtrace flight recorder") {
		t.Fatalf("dump content: %q", buf[:n])
	}
}
