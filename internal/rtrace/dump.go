package rtrace

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
)

// DumpTo writes a human-readable flight-recorder dump: every recorded
// trace as an indented span tree, newest root first. This is the
// SIGQUIT and panic-path rendering — terse enough for a terminal,
// complete enough to reconstruct what the process was doing.
func (t *Tracer) DumpTo(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "rtrace: tracing disabled")
		return
	}
	spans := t.Spans()
	fmt.Fprintf(w, "=== rtrace flight recorder (process %q, %d spans, %d dropped) ===\n",
		t.Process(), len(spans), t.Dropped())
	byTrace := make(map[TraceID][]SpanData)
	for _, sd := range spans {
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
	}
	ids := make([]TraceID, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return pickRoot(byTrace[ids[i]]).Start.After(pickRoot(byTrace[ids[j]]).Start)
	})
	for _, id := range ids {
		group := byTrace[id]
		wire := make([]WireSpan, 0, len(group))
		for _, sd := range group {
			wire = append(wire, sd.Wire())
		}
		fmt.Fprintf(w, "trace %s (%d spans)\n", id, len(group))
		for _, n := range Assemble(wire) {
			dumpNode(w, n, 1)
		}
	}
}

func dumpNode(w io.Writer, n *Node, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "%s %.3fms", n.Name, n.DurationMs)
	if n.Process != "" {
		fmt.Fprintf(w, " [%s]", n.Process)
	}
	if n.Error != "" {
		fmt.Fprintf(w, " ERROR=%q", n.Error)
	}
	for _, ev := range n.Events {
		fmt.Fprintf(w, " !%s", ev.Name)
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		dumpNode(w, c, depth+1)
	}
}

// DumpOnSignal installs a goroutine that writes DumpTo(w) each time the
// process receives SIGQUIT, and returns a stop function. The Go
// runtime's own SIGQUIT stack dump is suppressed while installed
// (signal.Notify takes ownership); pair the flight-recorder dump with
// -pprof for goroutine stacks.
func (t *Tracer) DumpOnSignal(w io.Writer) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				t.DumpTo(w)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
