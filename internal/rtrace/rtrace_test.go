package rtrace

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	tid, sid := NewIDs()
	if tid.IsZero() || sid.IsZero() {
		t.Fatalf("NewIDs returned zero id: %v %v", tid, sid)
	}
	if len(tid.String()) != 32 || len(sid.String()) != 16 {
		t.Fatalf("hex lengths: %q %q", tid, sid)
	}
	t2, ok := ParseTraceID(tid.String())
	if !ok || t2 != tid {
		t.Fatalf("ParseTraceID round trip: %v != %v (ok=%v)", t2, tid, ok)
	}
	s2, ok := ParseSpanID(sid.String())
	if !ok || s2 != sid {
		t.Fatalf("ParseSpanID round trip: %v != %v (ok=%v)", s2, sid, ok)
	}
	if _, ok := ParseTraceID("zz"); ok {
		t.Fatal("parsed malformed trace id")
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Fatal("parsed all-zero trace id")
	}
	if _, ok := ParseSpanID("0123"); ok {
		t.Fatal("parsed short span id")
	}
	// Uniqueness across a burst.
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id, _ := NewIDs()
		if seen[id] {
			t.Fatal("duplicate trace id in 1000 draws")
		}
		seen[id] = true
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	// Every span method must be callable on nil.
	sp.Attr("k", "v")
	sp.Event("e", "k", "v")
	sp.SetError(errors.New("boom"))
	sp.Errorf("x %d", 1)
	sp.Adopt(TraceID{1}, SpanID{2}, true)
	sp.RecordChild("c", time.Now(), time.Millisecond)
	sp.Finish()
	sp.FinishErr(nil)
	if c := sp.Child("y"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() || sp.Sampled() {
		t.Fatal("nil span leaked identity")
	}
	if sp.Traceparent() != "" {
		t.Fatal("nil span produced traceparent")
	}
	if tr.Spans() != nil || tr.Dropped() != 0 || tr.Process() != "" {
		t.Fatal("nil tracer leaked state")
	}
	if rem := tr.StartRemote("x", TraceID{1}, SpanID{}, true); rem != nil {
		t.Fatal("nil tracer StartRemote produced a span")
	}
}

func TestRootKeepAndChildBuffering(t *testing.T) {
	tr := New(Options{Process: "p", SlowThreshold: time.Hour})
	root := tr.StartSpan("root")
	root.Attr("k", "v")
	child := root.Child("child")
	child.Event("hop", "to", "replica-1")
	child.Finish()
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("child committed before root finished: %d spans", len(got))
	}
	root.Finish()
	root.Finish() // idempotent
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 committed spans, got %d", len(spans))
	}
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("order: %q %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].SpanID {
		t.Fatal("child not parented to root")
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Fatal("trace ids diverged")
	}
	if len(spans[0].Events) != 1 || spans[0].Events[0].Attrs[0].Value != "replica-1" {
		t.Fatalf("events lost: %+v", spans[0].Events)
	}
	if spans[1].Process != "p" || spans[1].Attrs[0] != (Attr{"k", "v"}) {
		t.Fatalf("root metadata lost: %+v", spans[1])
	}
}

func TestHeadSamplingDropsAndAlwaysKeep(t *testing.T) {
	tr := New(Options{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	// Unsampled fast clean traces are dropped entirely.
	for i := 0; i < 5; i++ {
		sp := tr.StartSpan("fast")
		sp.Child("c").Finish()
		sp.Finish()
	}
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("unsampled traces committed %d spans", n)
	}
	// Errored trace kept despite the head decision.
	sp := tr.StartSpan("bad")
	if sp.Sampled() {
		t.Skip("head sampler kept this trace; cannot assert error path")
	}
	sp.Child("c").Finish()
	sp.FinishErr(errors.New("boom"))
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("errored trace: want 2 spans, got %d", len(spans))
	}
	if spans[1].Error != "boom" {
		t.Fatalf("error lost: %+v", spans[1])
	}
	// Slow trace kept too.
	tr2 := New(Options{SampleEvery: 1 << 30, SlowThreshold: time.Nanosecond})
	slow := tr2.StartSpan("slow")
	time.Sleep(time.Microsecond)
	slow.Finish()
	if len(tr2.Spans()) != 1 {
		t.Fatal("slow trace dropped")
	}
}

func TestLateChildAfterRootFlush(t *testing.T) {
	tr := New(Options{})
	root := tr.StartSpan("root")
	straggler := root.Child("straggler")
	root.Finish()
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("want root only, got %d", n)
	}
	straggler.Finish() // commits directly: trace already kept
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("late child not committed: %d", n)
	}
	// And the drop side: unsampled flushed trace discards stragglers.
	tr2 := New(Options{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	r2 := tr2.StartSpan("root")
	s2 := r2.Child("straggler")
	if r2.Sampled() {
		t.Skip("head sampler kept this trace")
	}
	r2.Finish()
	s2.Finish()
	if n := len(tr2.Spans()); n != 0 {
		t.Fatalf("dropped trace leaked %d spans", n)
	}
}

func TestRingWrapAndPerTraceCap(t *testing.T) {
	tr := New(Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.StartSpan("s").Finish()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring size %d, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("ring not oldest-first after wrap")
		}
	}
	tr2 := New(Options{MaxSpansPerTrace: 2})
	root := tr2.StartSpan("root")
	for i := 0; i < 5; i++ {
		root.Child("c").Finish()
	}
	root.Finish()
	if n := len(tr2.Spans()); n != 3 { // 2 buffered children + root
		t.Fatalf("per-trace cap: %d spans", n)
	}
	if tr2.Dropped() != 3 {
		t.Fatalf("dropped count %d, want 3", tr2.Dropped())
	}
}

func TestStartRemoteAndAdopt(t *testing.T) {
	tr := New(Options{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	tid, psid := NewIDs()
	// Remote sampled decision wins over local head sampling.
	sp := tr.StartRemote("req", tid, psid, true)
	if sp.TraceID() != tid || !sp.Sampled() {
		t.Fatal("remote context not adopted at start")
	}
	sp.Finish()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Parent != psid {
		t.Fatalf("remote parent lost: %+v", spans)
	}
	// Zero trace id falls back to a fresh local root.
	sp2 := tr.StartRemote("req", TraceID{}, SpanID{}, false)
	if sp2.TraceID().IsZero() {
		t.Fatal("zero-id fallback minted no trace")
	}

	// Adopt: a root that learns its true trace mid-flight (dist worker).
	tr3 := New(Options{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	w := tr3.StartSpan("upload")
	pre := w.Child("pre")
	pre.Finish()
	coordTID, coordSID := NewIDs()
	w.Adopt(coordTID, coordSID, true)
	w.Finish()
	spans = tr3.Spans()
	if len(spans) != 2 {
		t.Fatalf("adopted trace dropped: %d spans", len(spans))
	}
	for _, sd := range spans {
		if sd.TraceID != coordTID {
			t.Fatalf("span %q kept old trace id", sd.Name)
		}
	}
	if spans[1].Parent != coordSID {
		t.Fatal("adopted parent not set")
	}
}

func TestRecordChild(t *testing.T) {
	tr := New(Options{})
	root := tr.StartSpan("sweep")
	start := time.Now().Add(-3 * time.Millisecond)
	root.RecordChild("FW", start, 2*time.Millisecond, "replica", "0")
	root.Finish()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	fw := spans[0]
	if fw.Name != "FW" || fw.Parent != spans[1].SpanID || fw.Duration != 2*time.Millisecond {
		t.Fatalf("recorded child wrong: %+v", fw)
	}
	if len(fw.Attrs) != 1 || fw.Attrs[0] != (Attr{"replica", "0"}) {
		t.Fatalf("attrs: %+v", fw.Attrs)
	}
}

func TestSummaries(t *testing.T) {
	tr := New(Options{Process: "router"})
	a := tr.StartSpan("a")
	a.Child("a1").Finish()
	a.FinishErr(errors.New("bad"))
	time.Sleep(time.Millisecond)
	b := tr.StartSpan("b")
	b.Finish()
	sums := tr.Summaries(0)
	if len(sums) != 2 {
		t.Fatalf("want 2 traces, got %d", len(sums))
	}
	if sums[0].Root != "b" || sums[1].Root != "a" {
		t.Fatalf("not newest-first: %q %q", sums[0].Root, sums[1].Root)
	}
	if sums[1].Spans != 2 || sums[1].Error != "bad" || sums[1].Process != "router" {
		t.Fatalf("summary: %+v", sums[1])
	}
	if got := tr.Summaries(1); len(got) != 1 || got[0].Root != "b" {
		t.Fatalf("limit: %+v", got)
	}
}

func TestDefaultEnable(t *testing.T) {
	if Default() != nil {
		t.Fatal("default tracer non-nil at start")
	}
	tr := Enable(Options{Process: "test"})
	defer SetDefault(nil)
	if Default() != tr {
		t.Fatal("Enable did not install default")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not disable")
	}
}

func TestConcurrentSpanMutation(t *testing.T) {
	tr := New(Options{})
	root := tr.StartSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("c")
			c.Event("e", "k", "v")
			root.Event("annotated-from-worker")
			c.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if n := len(tr.Spans()); n != 9 {
		t.Fatalf("want 9 spans, got %d", n)
	}
}
