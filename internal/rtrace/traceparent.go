package rtrace

import "context"

// W3C traceparent propagation: "00-<32 hex trace>-<16 hex span>-<2 hex
// flags>", flags bit 0 = sampled. This is the only wire format the
// serving plane needs — loadgen mints one, the router forwards its own
// span as the parent, the replica adopts it.

// TraceparentHeader is the canonical HTTP header name.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a W3C traceparent header value ("" for a
// zero trace id).
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	if tid.IsZero() {
		return ""
	}
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = appendHex(b, tid[:])
	b = append(b, '-')
	b = appendHex(b, sid[:])
	b = append(b, '-', '0')
	if sampled {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header value. ok is false
// for malformed input, unknown versions with short payloads, or the
// all-zero trace id.
func ParseTraceparent(s string) (tid TraceID, sid SpanID, sampled bool, ok bool) {
	// version-format: 2 hex "-" 32 hex "-" 16 hex "-" 2 hex
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if s[0] == 'f' && s[1] == 'f' { // version 0xff is forbidden
		return TraceID{}, SpanID{}, false, false
	}
	if !parseHex(tid[:], s[3:35]) || tid.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	if !parseHex(sid[:], s[36:52]) || sid.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if !parseHex(flags[:], s[53:55]) {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, sid, flags[0]&1 == 1, true
}

// ctxKey keys the span carried through request contexts.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span is carried too —
// FromContext then reports nil, keeping the disabled path uniform.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
