package rtrace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"time"
)

// WireSpan is SpanData in the JSON shape /debug/traces/{id} serves —
// flat, self-describing, and mergeable across processes (the router
// fans a trace-id query out to its replicas and merges their WireSpan
// lists before assembling one tree).
type WireSpan struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	Parent     string            `json:"parent_id,omitempty"`
	Process    string            `json:"process,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMs float64           `json:"duration_ms"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []Event           `json:"events,omitempty"`
}

// Wire converts recorder storage to the wire shape.
func (sd SpanData) Wire() WireSpan {
	w := WireSpan{
		TraceID: sd.TraceID.String(), SpanID: sd.SpanID.String(),
		Process: sd.Process, Name: sd.Name, Start: sd.Start,
		DurationMs: ms(sd.Duration), Error: sd.Error, Events: sd.Events,
	}
	if !sd.Parent.IsZero() {
		w.Parent = sd.Parent.String()
	}
	if len(sd.Attrs) > 0 {
		w.Attrs = make(map[string]string, len(sd.Attrs))
		for _, a := range sd.Attrs {
			w.Attrs[a.Key] = a.Value
		}
	}
	return w
}

// Node is one span in an assembled trace tree.
type Node struct {
	WireSpan
	Children []*Node `json:"children,omitempty"`
}

// Assemble builds trace trees from flat spans (possibly merged from
// several processes). A span whose parent is absent becomes a root —
// that is what a replica-local query of a router-originated trace
// looks like. Roots and children are ordered by start time.
func Assemble(spans []WireSpan) []*Node {
	nodes := make(map[string]*Node, len(spans))
	order := make([]*Node, 0, len(spans))
	for _, ws := range spans {
		n := &Node{WireSpan: ws}
		// Duplicate span ids (a trace fetched from both the router's own
		// ring and a replica's) keep the first copy.
		if _, dup := nodes[ws.SpanID]; dup {
			continue
		}
		nodes[ws.SpanID] = n
		order = append(order, n)
	}
	var roots []*Node
	for _, n := range order {
		if p, ok := nodes[n.Parent]; ok && n.Parent != "" && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(s []*Node) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	for _, n := range order {
		byStart(n.Children)
	}
	return roots
}

// TraceResponse is the /debug/traces/{id} body.
type TraceResponse struct {
	TraceID string     `json:"trace_id"`
	Spans   []WireSpan `json:"spans"`
	Tree    []*Node    `json:"tree"`
}

// ListResponse is the /debug/traces body.
type ListResponse struct {
	Process string    `json:"process,omitempty"`
	Traces  []Summary `json:"traces"`
}

// WireTrace returns one trace's spans in wire shape, oldest first.
func (t *Tracer) WireTrace(id TraceID) []WireSpan {
	spans := t.Trace(id)
	out := make([]WireSpan, 0, len(spans))
	for _, sd := range spans {
		out = append(out, sd.Wire())
	}
	return out
}

// Handler serves the flight recorder:
//
//	GET /debug/traces       → ListResponse (trace summaries, newest first)
//	GET /debug/traces/{id}  → TraceResponse (flat spans + assembled tree)
//
// Mount it at both patterns on a ServeMux; it routes by path suffix so
// it also works mounted bare.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if id == "" {
			// Bare mount: take anything after the final "traces/".
			if i := strings.LastIndex(r.URL.Path, "/traces/"); i >= 0 {
				id = r.URL.Path[i+len("/traces/"):]
			}
		}
		if id == "" {
			writeJSON(w, ListResponse{Process: t.Process(), Traces: t.Summaries(256)})
			return
		}
		tid, ok := ParseTraceID(id)
		if !ok {
			http.Error(w, `{"error":"malformed trace id"}`, http.StatusBadRequest)
			return
		}
		spans := t.WireTrace(tid)
		if len(spans) == 0 {
			http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
			return
		}
		writeJSON(w, TraceResponse{TraceID: id, Spans: spans, Tree: Assemble(spans)})
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
