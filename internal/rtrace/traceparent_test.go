package rtrace

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewIDs()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(tid, sid, sampled)
		if len(h) != 55 || !strings.HasPrefix(h, "00-") {
			t.Fatalf("format: %q", h)
		}
		t2, s2, samp2, ok := ParseTraceparent(h)
		if !ok || t2 != tid || s2 != sid || samp2 != sampled {
			t.Fatalf("round trip %q: %v %v %v %v", h, t2, s2, samp2, ok)
		}
	}
	if FormatTraceparent(TraceID{}, sid, true) != "" {
		t.Fatal("zero trace id formatted")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	tid, sid := NewIDs()
	good := FormatTraceparent(tid, sid, true)
	bad := []string{
		"",
		"00-abc",
		strings.Replace(good, "-", "_", 1),
		"ff" + good[2:], // forbidden version
		"00-" + strings.Repeat("0", 32) + good[35:],     // zero trace id
		good[:36] + strings.Repeat("0", 16) + good[52:], // zero span id
		good[:53] + "zz", // bad flags
		"00-" + strings.Repeat("g", 32) + good[35:],     // bad trace hex
		good[:36] + strings.Repeat("g", 16) + good[52:], // bad span hex
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceparent(s); ok {
			t.Fatalf("accepted %q", s)
		}
	}
	// Future version with long payload still parses (per W3C spec).
	if _, _, _, ok := ParseTraceparent("01" + good[2:] + "-extra"); !ok {
		t.Fatal("rejected future version")
	}
}

func TestContextCarry(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context carried a span")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("nil span changed context")
	}
	tr := New(Options{})
	sp := tr.StartSpan("x")
	ctx2 := ContextWithSpan(ctx, sp)
	if FromContext(ctx2) != sp {
		t.Fatal("span lost in context")
	}
}
