// Package rtrace is the runtime request/step tracing layer: 128-bit
// trace IDs, parent-linked spans with events and attributes, and a
// per-process flight recorder — a bounded ring of completed spans that
// GET /debug/traces serves and SIGQUIT dumps.
//
// It is deliberately distinct from internal/trace, which models DRAM
// data movement for the paper's cost analysis; rtrace traces the
// running system (requests through the fleet, sweeps through the
// batcher, optimizer steps through the distributed trainer).
//
// Sampling. Every root span makes a head-sampling decision at creation
// (keep 1 in SampleEvery); spans of a trace are buffered per trace and
// committed to the ring only when the root finishes and the trace is
// kept. A trace that head-sampling would drop is still kept when its
// root errored or ran longer than SlowThreshold — the flight-recorder
// property: the traces you want after an incident are exactly the slow
// and broken ones.
//
// Cost discipline. The disabled path is a nil *Tracer (and therefore
// nil *Span everywhere): every method is a pointer test, no clock
// reads, no allocation — which is what keeps the warm FW+BP cell loop
// at 0 allocs/op with tracing compiled in, and makes it safe to leave
// the plumbing in production builds. Spans are only created at
// request/sweep/step granularity, never per cell; per-phase timing
// rides the existing obs.Recorder and is folded into child spans after
// the fact.
package rtrace

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID [16]byte

// SpanID is a 64-bit span identifier, rendered as 16 hex digits.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

const hexdigits = "0123456789abcdef"

func appendHex(dst []byte, b []byte) []byte {
	for _, c := range b {
		dst = append(dst, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return dst
}

// String renders the id as lowercase hex.
func (t TraceID) String() string { return string(appendHex(make([]byte, 0, 32), t[:])) }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return string(appendHex(make([]byte, 0, 16), s[:])) }

// ParseTraceID parses 32 lowercase/uppercase hex digits.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if !parseHex(t[:], s) || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseSpanID parses 16 hex digits.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if !parseHex(id[:], s) || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

func parseHex(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// idState seeds the process-wide id generator once; splitmix64 over an
// atomic counter gives unique, well-mixed ids without crypto/rand on
// the request path.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ 0x9e3779b97f4a7c15)
}

func nextRand() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// NewIDs mints a fresh (trace, span) id pair — what a client with no
// tracer of its own (the load generator) uses to originate a trace.
func NewIDs() (TraceID, SpanID) {
	var t TraceID
	var s SpanID
	putU64(t[:8], nextRand())
	putU64(t[8:], nextRand())
	putU64(s[:], nextRand())
	return t, s
}

func newSpanID() SpanID {
	var s SpanID
	putU64(s[:], nextRand())
	return s
}

func putU64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// Attr is one string key/value pair on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is a point-in-time annotation on a span (a routing decision, a
// failover hop, a straggler wait).
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanData is one completed span as the flight recorder stores it.
type SpanData struct {
	TraceID  TraceID
	SpanID   SpanID
	Parent   SpanID // zero for a root (or a remote parent not seen locally)
	Process  string // the tracer's process label
	Name     string
	Start    time.Time
	Duration time.Duration
	Error    string
	Attrs    []Attr
	Events   []Event
}

// Options tunes a Tracer; zero values select production-sensible
// defaults.
type Options struct {
	// Process labels every span with the emitting process (e.g.
	// "router", "replica-0", "coordinator") so merged cross-process
	// trees stay readable. Empty is allowed.
	Process string
	// Capacity bounds the flight-recorder ring of completed spans
	// (0 = 8192).
	Capacity int
	// SampleEvery head-samples root spans: 1 in SampleEvery traces is
	// kept (0 or 1 = keep every trace). Slow and errored traces are kept
	// regardless of the head decision.
	SampleEvery int
	// SlowThreshold always keeps a trace whose root span ran at least
	// this long, sampled or not (0 = 250ms).
	SlowThreshold time.Duration
	// MaxSpansPerTrace bounds the per-trace span buffer; spans beyond it
	// are counted but dropped (0 = 512).
	MaxSpansPerTrace int
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 8192
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	return o
}

// Tracer owns one process's flight recorder. A nil *Tracer is the
// disabled tracer: every method (and every method of the nil spans it
// hands out) is a no-op behind a single pointer test.
type Tracer struct {
	opts Options
	hdr  atomic.Uint64 // head-sampling counter

	mu      sync.Mutex
	ring    []SpanData
	next    int
	wrapped bool
	dropped int64 // spans dropped by the per-trace buffer bound
}

// New builds an enabled tracer.
func New(opts Options) *Tracer {
	o := opts.withDefaults()
	return &Tracer{opts: o, ring: make([]SpanData, 0, o.Capacity)}
}

// def is the process-default tracer the training stack (core, parallel,
// dist) traces through, mirroring obs.Default. nil = tracing disabled.
var def atomic.Pointer[Tracer]

// Default returns the process-default tracer (nil when tracing is
// disabled, which is the starting state).
func Default() *Tracer { return def.Load() }

// Enable installs a process-default tracer built from opts and returns
// it. Call once at startup, before training begins.
func Enable(opts Options) *Tracer {
	t := New(opts)
	def.Store(t)
	return t
}

// SetDefault installs (or, with nil, disables) the process-default
// tracer directly — the test hook behind Enable.
func SetDefault(t *Tracer) { def.Store(t) }

// Process returns the tracer's process label ("" on nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.opts.Process
}

// Dropped reports spans discarded by the per-trace buffer bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceState is the shared per-trace bookkeeping: the head-sampling
// decision, the buffer of finished spans awaiting the root's verdict,
// and the flush state once the root finished. One state is created per
// local root span; all descendants share it.
type traceState struct {
	tr      *Tracer
	mu      sync.Mutex
	traceID TraceID
	sampled bool
	spans   []SpanData
	flushed bool
	kept    bool
	root    *Span
}

// Span is one in-flight traced operation. All methods are safe on a
// nil receiver (the disabled-tracing path) and safe to call from a
// goroutine other than the creator's — the batcher's sweep worker
// annotates request spans owned by blocked submitters.
type Span struct {
	st   *traceState
	data SpanData
	done atomic.Bool
}

// headSample decides whether a fresh root trace is kept by default.
func (t *Tracer) headSample() bool {
	if t.opts.SampleEvery <= 1 {
		return true
	}
	return t.hdr.Add(1)%uint64(t.opts.SampleEvery) == 0
}

// StartSpan begins a new local root span, minting a fresh trace id and
// making the head-sampling decision for the whole trace.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	tid, sid := NewIDs()
	return t.start(name, tid, SpanID{}, sid, t.headSample())
}

// StartRemote begins a local root span under a trace that originated in
// another process (or another component of this one): the inbound
// traceparent's trace id and parent span id, plus its sampling
// decision. The remote decision wins — a sampled trace stays sampled
// across every process it touches.
func (t *Tracer) StartRemote(name string, tid TraceID, parent SpanID, sampled bool) *Span {
	if t == nil {
		return nil
	}
	if tid.IsZero() {
		return t.StartSpan(name)
	}
	return t.start(name, tid, parent, newSpanID(), sampled)
}

func (t *Tracer) start(name string, tid TraceID, parent, sid SpanID, sampled bool) *Span {
	s := &Span{
		st: &traceState{tr: t, traceID: tid, sampled: sampled},
		data: SpanData{
			TraceID: tid, SpanID: sid, Parent: parent,
			Process: t.opts.Process, Name: name, Start: time.Now(),
		},
	}
	s.st.root = s
	return s
}

// Child begins a span under s, in the same trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.st.mu.Lock()
	tid := s.st.traceID
	s.st.mu.Unlock()
	return &Span{
		st: s.st,
		data: SpanData{
			TraceID: tid, SpanID: newSpanID(), Parent: s.data.SpanID,
			Process: s.st.tr.opts.Process, Name: name, Start: time.Now(),
		},
	}
}

// TraceID returns the span's trace id (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	return s.st.traceID
}

// SpanID returns the span's id (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.data.SpanID
}

// Sampled reports the trace's head-sampling decision (false on nil).
// Slow/error traces may still be kept when this is false.
func (s *Span) Sampled() bool {
	if s == nil {
		return false
	}
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	return s.st.sampled
}

// Traceparent renders the span's context as a W3C traceparent header
// value for outbound propagation ("" on nil).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.TraceID(), s.data.SpanID, s.Sampled())
}

// Attr attaches a key/value pair to the span.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.st.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
	s.st.mu.Unlock()
}

// Event records a point-in-time annotation with optional key/value
// attribute pairs (kv must alternate key, value).
func (s *Span) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	ev := Event{Time: time.Now(), Name: name}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
	}
	s.st.mu.Lock()
	s.data.Events = append(s.data.Events, ev)
	s.st.mu.Unlock()
}

// SetError marks the span (and therefore its trace) as failed; an
// errored trace is always kept. nil err is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.st.mu.Lock()
	s.data.Error = err.Error()
	s.st.mu.Unlock()
}

// Errorf is SetError with a formatted message.
func (s *Span) Errorf(format string, args ...any) {
	if s == nil {
		return
	}
	s.st.mu.Lock()
	s.data.Error = fmt.Sprintf(format, args...)
	s.st.mu.Unlock()
}

// Adopt rewires the span — and every span its trace creates from now
// on — onto a trace that arrived after the span started: the
// distributed worker learns the coordinator's step trace only from the
// merged broadcast, after its upload span is already open. sampled
// forces the keep decision of the adopting trace (the coordinator's
// sampling travels with its trace id).
func (s *Span) Adopt(tid TraceID, parent SpanID, sampled bool) {
	if s == nil || tid.IsZero() {
		return
	}
	s.st.mu.Lock()
	s.st.traceID = tid
	if sampled {
		s.st.sampled = true
	}
	s.data.TraceID = tid
	if !parent.IsZero() {
		s.data.Parent = parent
	}
	for i := range s.st.spans {
		s.st.spans[i].TraceID = tid
	}
	s.st.mu.Unlock()
}

// RecordChild appends an already-measured child span — how per-phase
// wall time measured by an obs.Recorder during a sweep or step is
// folded into the trace after the fact. kv attribute pairs are
// attached to the recorded span.
func (s *Span) RecordChild(name string, start time.Time, d time.Duration, kv ...string) {
	if s == nil {
		return
	}
	data := SpanData{
		SpanID: newSpanID(), Parent: s.data.SpanID,
		Process: s.st.tr.opts.Process, Name: name, Start: start, Duration: d,
	}
	for i := 0; i+1 < len(kv); i += 2 {
		data.Attrs = append(data.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
	}
	s.st.mu.Lock()
	data.TraceID = s.st.traceID
	s.st.addLocked(data)
	s.st.mu.Unlock()
}

// Finish completes the span. Finishing the trace's local root decides
// the trace's fate: commit every buffered span to the flight recorder
// when the trace is sampled, errored, or slow; drop otherwise. Finish
// is idempotent.
func (s *Span) Finish() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.st.mu.Lock()
	s.data.Duration = time.Since(s.data.Start)
	s.data.TraceID = s.st.traceID
	if s.st.root == s {
		keep := s.st.sampled || s.data.Error != "" ||
			s.data.Duration >= s.st.tr.opts.SlowThreshold
		s.st.flushed, s.st.kept = true, keep
		spans := s.st.spans
		s.st.spans = nil
		s.st.mu.Unlock()
		if keep {
			s.st.tr.commit(spans)
			s.st.tr.commit([]SpanData{s.data})
		}
		return
	}
	s.st.addLocked(s.data)
	s.st.mu.Unlock()
}

// FinishErr is SetError + Finish in one call, convenient with defer.
func (s *Span) FinishErr(err error) {
	s.SetError(err)
	s.Finish()
}

// addLocked buffers (or, post-flush, commits) one finished span.
// Caller holds st.mu.
func (st *traceState) addLocked(data SpanData) {
	if st.flushed {
		if st.kept {
			// A straggler finishing after the root: commit directly.
			st.tr.commit([]SpanData{data})
		}
		return
	}
	if len(st.spans) >= st.tr.opts.MaxSpansPerTrace {
		st.tr.mu.Lock()
		st.tr.dropped++
		st.tr.mu.Unlock()
		return
	}
	st.spans = append(st.spans, data)
}

// commit appends finished spans to the flight-recorder ring.
func (t *Tracer) commit(spans []SpanData) {
	if len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, sd := range spans {
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, sd)
		} else {
			t.ring[t.next] = sd
			t.next = (t.next + 1) % cap(t.ring)
			t.wrapped = true
		}
	}
	t.mu.Unlock()
}

// Spans returns a copy of the flight recorder's contents, oldest first
// (nil on a nil tracer).
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]SpanData(nil), t.ring...)
	}
	out := make([]SpanData, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Trace returns the recorded spans of one trace, oldest first.
func (t *Tracer) Trace(id TraceID) []SpanData {
	var out []SpanData
	for _, sd := range t.Spans() {
		if sd.TraceID == id {
			out = append(out, sd)
		}
	}
	return out
}

// Summary is one trace's row in the GET /debug/traces listing.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Process    string    `json:"process,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Error      string    `json:"error,omitempty"`
}

// Summaries groups the flight recorder by trace, newest root first,
// capped at limit (<= 0 = no cap). The root of a trace is its earliest
// recorded parentless span; a trace whose root lives in another
// process is summarized by its earliest local span.
func (t *Tracer) Summaries(limit int) []Summary {
	spans := t.Spans()
	byTrace := make(map[TraceID][]SpanData)
	order := make([]TraceID, 0)
	for _, sd := range spans {
		if _, ok := byTrace[sd.TraceID]; !ok {
			order = append(order, sd.TraceID)
		}
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
	}
	out := make([]Summary, 0, len(order))
	for _, id := range order {
		group := byTrace[id]
		root := pickRoot(group)
		sum := Summary{
			TraceID: id.String(), Root: root.Name, Process: root.Process,
			Start: root.Start, DurationMs: ms(root.Duration), Spans: len(group),
		}
		for _, sd := range group {
			if sd.Error != "" {
				sum.Error = sd.Error
				break
			}
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// pickRoot returns the trace's local root: the earliest span whose
// parent is absent from the group.
func pickRoot(group []SpanData) SpanData {
	present := make(map[SpanID]bool, len(group))
	for _, sd := range group {
		present[sd.SpanID] = true
	}
	best := group[0]
	found := false
	for _, sd := range group {
		if sd.Parent.IsZero() || !present[sd.Parent] {
			if !found || sd.Start.Before(best.Start) {
				best, found = sd, true
			}
		}
	}
	return best
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
