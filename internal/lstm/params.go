// Package lstm implements the LSTM cell used by the training substrate:
// forward propagation, baseline backpropagation, and the reordered
// BP-EW-P1/P2 split that η-LSTM's MS1 optimization exploits.
//
// Conventions. All batch data is batch-major: a batch×H matrix holds one
// sample per row. A cell has four gates indexed by GateF..GateO; each
// gate g owns an input weight W[g] (input×H), a recurrent weight U[g]
// (H×H) and a bias B[g] (len H). The gate pre-activation for gate g is
//
//	raw_g = x·W_g + h_{t-1}·U_g + b_g            (paper Eq. 1)
//
// followed by sigmoid for f, i, o and tanh for the cell gate c̃.
package lstm

import (
	"fmt"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// Gate indexes the four LSTM gates.
type Gate int

// The four gates of an LSTM cell.
const (
	GateF Gate = iota // forget gate (sigmoid)
	GateI             // input gate (sigmoid)
	GateC             // cell/candidate gate (tanh)
	GateO             // output gate (sigmoid)
	NumGates
)

// String implements fmt.Stringer.
func (g Gate) String() string {
	switch g {
	case GateF:
		return "f"
	case GateI:
		return "i"
	case GateC:
		return "c"
	case GateO:
		return "o"
	}
	return fmt.Sprintf("Gate(%d)", int(g))
}

// Params holds the weights of one LSTM layer. All unrolled cells of the
// layer share a single Params (the paper's weight-sharing across
// timestamps).
type Params struct {
	Input  int // input feature width
	Hidden int // hidden state width

	W [NumGates]*tensor.Matrix // Input×Hidden
	U [NumGates]*tensor.Matrix // Hidden×Hidden
	B [NumGates][]float32      // len Hidden
}

// NewParams allocates zeroed parameters for a layer with the given
// input and hidden widths.
func NewParams(input, hidden int) *Params {
	p := &Params{Input: input, Hidden: hidden}
	for g := Gate(0); g < NumGates; g++ {
		p.W[g] = tensor.New(input, hidden)
		p.U[g] = tensor.New(hidden, hidden)
		p.B[g] = make([]float32, hidden)
	}
	return p
}

// Init fills the parameters with the standard LSTM initialization:
// Xavier-uniform weights and a +1 forget-gate bias (helps gradient flow
// on long sequences).
func (p *Params) Init(r *rng.RNG) {
	for g := Gate(0); g < NumGates; g++ {
		p.W[g].XavierInit(r, p.Input, p.Hidden)
		p.U[g].XavierInit(r, p.Hidden, p.Hidden)
		for j := range p.B[g] {
			p.B[g][j] = 0
		}
	}
	for j := range p.B[GateF] {
		p.B[GateF][j] = 1
	}
}

// Bytes returns the parameter storage in bytes.
func (p *Params) Bytes() int64 {
	var b int64
	for g := Gate(0); g < NumGates; g++ {
		b += p.W[g].Bytes() + p.U[g].Bytes() + int64(len(p.B[g]))*4
	}
	return b
}

// Clone returns a deep copy of p.
func (p *Params) Clone() *Params {
	c := NewParams(p.Input, p.Hidden)
	for g := Gate(0); g < NumGates; g++ {
		c.W[g].CopyFrom(p.W[g])
		c.U[g].CopyFrom(p.U[g])
		copy(c.B[g], p.B[g])
	}
	return c
}

// Grads accumulates weight gradients for one layer across its unrolled
// BP cells (paper Eq. 3's "+=" accumulation).
type Grads struct {
	Input  int
	Hidden int

	W [NumGates]*tensor.Matrix
	U [NumGates]*tensor.Matrix
	B [NumGates][]float32
}

// NewGrads allocates zeroed gradients matching p's shapes.
func NewGrads(p *Params) *Grads {
	g := &Grads{Input: p.Input, Hidden: p.Hidden}
	for i := Gate(0); i < NumGates; i++ {
		g.W[i] = tensor.New(p.Input, p.Hidden)
		g.U[i] = tensor.New(p.Hidden, p.Hidden)
		g.B[i] = make([]float32, p.Hidden)
	}
	return g
}

// Zero clears all accumulated gradients.
func (g *Grads) Zero() {
	for i := Gate(0); i < NumGates; i++ {
		g.W[i].Zero()
		g.U[i].Zero()
		for j := range g.B[i] {
			g.B[i][j] = 0
		}
	}
}

// Scale multiplies every gradient by s (MS2's convergence-aware
// scaling factor applies through this).
func (g *Grads) Scale(s float32) {
	for i := Gate(0); i < NumGates; i++ {
		tensor.Scale(g.W[i], g.W[i], s)
		tensor.Scale(g.U[i], g.U[i], s)
		for j := range g.B[i] {
			g.B[i][j] *= s
		}
	}
}

// Add accumulates o into g.
func (g *Grads) Add(o *Grads) {
	for i := Gate(0); i < NumGates; i++ {
		tensor.AddInPlace(g.W[i], o.W[i])
		tensor.AddInPlace(g.U[i], o.U[i])
		for j := range g.B[i] {
			g.B[i][j] += o.B[i][j]
		}
	}
}

// AbsSum returns Σ|δW|+|δU| — the gradient "magnitude" of paper Fig. 8.
func (g *Grads) AbsSum() float64 {
	var s float64
	for i := Gate(0); i < NumGates; i++ {
		s += g.W[i].AbsSum() + g.U[i].AbsSum()
	}
	return s
}

// MaxAbs returns the largest absolute gradient entry, used for clipping.
func (g *Grads) MaxAbs() float32 {
	var mx float32
	for i := Gate(0); i < NumGates; i++ {
		if v := g.W[i].MaxAbs(); v > mx {
			mx = v
		}
		if v := g.U[i].MaxAbs(); v > mx {
			mx = v
		}
	}
	return mx
}
