package lstm

import (
	"etalstm/internal/obs"
	"etalstm/internal/tensor"
)

// P1 holds the six BP-EW-P1 products — the part of the BP element-wise
// stage that depends only on FW intermediates (paper Sec. IV-A). With
// MS1's execution reordering these are computed during the FW pass,
// immediately consuming the raw gates, and they replace f/i/c̃/o/s as
// what travels to the BP cell:
//
//	Pf  = s_{t-1} ⊙ f(1-f)        factor of δf̂ = δs ⊙ Pf
//	Pi  = c̃ ⊙ i(1-i)              factor of δî = δs ⊙ Pi
//	Pc  = i ⊙ (1-c̃²)              factor of δĉ = δs ⊙ Pc
//	Po  = tanh(s) ⊙ o(1-o)        factor of δô = δh ⊙ Po
//	Ps  = o ⊙ (1-tanh²(s))        factor of δs += δh ⊙ Ps
//	Pfs = f                        factor of δS_{t-1} = δs ⊙ Pfs
//
// Every product is a composition of values in [-1, 1], so each P1 entry
// lies in [-1, 1]; the products concentrate mass near zero far more than
// the raw gates do (paper Fig. 6), which is what makes near-zero pruning
// effective after the reorder.
//
// Ownership: the six matrices are drawn from the workspace given to
// ComputeP1; the BP cell (or whoever else consumes the set) calls
// Release to hand them back.
type P1 struct {
	Pf, Pi, Pc, Po, Ps, Pfs *tensor.Matrix // each batch×hidden
}

// Bytes returns the dense storage of the P1 set.
func (p *P1) Bytes() int64 {
	return p.Pf.Bytes() + p.Pi.Bytes() + p.Pc.Bytes() +
		p.Po.Bytes() + p.Ps.Bytes() + p.Pfs.Bytes()
}

// Matrices returns the six P1 matrices in a fixed order (Pf, Pi, Pc,
// Po, Ps, Pfs) for compression and statistics code.
func (p *P1) Matrices() []*tensor.Matrix {
	return []*tensor.Matrix{p.Pf, p.Pi, p.Pc, p.Po, p.Ps, p.Pfs}
}

// Release returns the six product matrices to ws and recycles the
// header. The caller must hold no other reference to them. Safe on a
// nil workspace.
func (p *P1) Release(ws *tensor.Workspace) {
	if p == nil {
		return
	}
	ws.PutAll(p.Pf, p.Pi, p.Pc, p.Po, p.Ps, p.Pfs)
	*p = P1{}
	ws.PutObj(wsSlotP1, p)
}

// getP1 pops a recycled header or allocates one.
func getP1(ws *tensor.Workspace) *P1 {
	if v := ws.GetObj(wsSlotP1); v != nil {
		return v.(*P1)
	}
	return &P1{}
}

// ComputeP1 derives the P1 products from a freshly produced FW cache.
// Under MS1 this runs inside the FW pass (execution reordering); the raw
// gate matrices may be released afterwards. The products are drawn
// from ws and owned by the returned set.
func ComputeP1(ws *tensor.Workspace, cache *FWCache) *P1 {
	sp := ws.Recorder().Begin(obs.PhaseBPEWP1)
	n := cache.F.Rows
	h := cache.F.Cols
	p := getP1(ws)
	*p = P1{
		Pf:  ws.Get(n, h),
		Pi:  ws.Get(n, h),
		Pc:  ws.Get(n, h),
		Po:  ws.Get(n, h),
		Ps:  ws.Get(n, h),
		Pfs: ws.Get(n, h),
	}
	for k := 0; k < n*h; k++ {
		f := cache.F.Data[k]
		i := cache.I.Data[k]
		c := cache.C.Data[k]
		o := cache.O.Data[k]
		ts := tensor.Tanh32(cache.S.Data[k])
		sp := cache.SPrev.Data[k]

		p.Pf.Data[k] = sp * f * (1 - f)
		p.Pi.Data[k] = c * i * (1 - i)
		p.Pc.Data[k] = i * (1 - c*c)
		p.Po.Data[k] = ts * o * (1 - o)
		p.Ps.Data[k] = o * (1 - ts*ts)
		p.Pfs.Data[k] = f
	}
	sp.End()
	return p
}

// ForwardWithP1 runs one FW cell and immediately computes its P1
// products (MS1's reordered flow). The raw intermediates are consumed
// on the spot: once the P1 products exist, the gate matrices go
// straight back to the workspace — the in-memory analogue of the
// paper's early-consume of raw gates. Only h, s (caller-owned) and the
// P1 set survive the call.
func ForwardWithP1(ws *tensor.Workspace, p *Params, x, hPrev, sPrev *tensor.Matrix) (h, s *tensor.Matrix, p1 *P1) {
	h, s, cache := Forward(ws, p, x, hPrev, sPrev)
	p1 = ComputeP1(ws, cache)
	cache.S = nil // s escapes to the caller; don't recycle it
	cache.Release(ws)
	return h, s, p1
}

// BackwardFromP1 runs the BP cell using precomputed P1 products instead
// of raw FW intermediates (the BP-EW-P2 + BP-MatMul remainder). x and
// hPrev are the cell's stored activations. The result is numerically
// identical to Backward on the same cell; TestP1Equivalence asserts it.
// Internal scratch comes from ws and is released before returning; the
// P1 set is left intact for the caller to Release once the cell is
// consumed for good.
func BackwardFromP1(ws *tensor.Workspace, p *Params, grads *Grads, x, hPrev *tensor.Matrix, p1 *P1, in BPInput) BPOutput {
	sp := ws.Recorder().Begin(obs.PhaseBPEWP2)
	batch := p1.Pf.Rows
	hidden := p.Hidden

	dh := ws.Get(batch, hidden)
	if in.DY != nil {
		tensor.AddInPlace(dh, in.DY)
	}
	if in.DH != nil {
		tensor.AddInPlace(dh, in.DH)
	}

	var dGate [NumGates]*tensor.Matrix
	for g := Gate(0); g < NumGates; g++ {
		dGate[g] = ws.Get(batch, hidden)
	}
	dsPrev := ws.Get(batch, hidden)

	// BP-EW-P2: pure gradient×P1 products. A zero P1 entry (pruned by
	// the compression module) zeroes the corresponding gate gradient,
	// which is exactly the "skip near-zero operands" computation saving
	// the paper describes.
	for k := 0; k < batch*hidden; k++ {
		dhk := dh.Data[k]
		ds := dhk * p1.Ps.Data[k]
		if in.DS != nil {
			ds += in.DS.Data[k]
		}
		dGate[GateO].Data[k] = dhk * p1.Po.Data[k]
		dGate[GateF].Data[k] = ds * p1.Pf.Data[k]
		dGate[GateI].Data[k] = ds * p1.Pi.Data[k]
		dGate[GateC].Data[k] = ds * p1.Pc.Data[k]
		dsPrev.Data[k] = ds * p1.Pfs.Data[k]
	}
	ws.Put(dh)
	sp.End()

	out := matmulBackward(ws, p, grads, x, hPrev, &dGate, dsPrev)
	ws.PutAll(dGate[:]...)
	return out
}
