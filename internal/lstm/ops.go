package lstm

// OpCount tallies the arithmetic work of a cell phase. The hardware
// simulator and the GPU cost model consume these counts instead of
// re-deriving them, so software and hardware experiments agree on what
// "one cell" costs.
type OpCount struct {
	MatMulMACs int64 // multiply-accumulates in the MatMul stage
	EWMul      int64 // element-wise multiplies
	EWAdd      int64 // element-wise adds/subtracts
	Activation int64 // sigmoid/tanh evaluations
}

// Add returns the element-wise sum of two op counts.
func (o OpCount) Add(p OpCount) OpCount {
	return OpCount{
		MatMulMACs: o.MatMulMACs + p.MatMulMACs,
		EWMul:      o.EWMul + p.EWMul,
		EWAdd:      o.EWAdd + p.EWAdd,
		Activation: o.Activation + p.Activation,
	}
}

// Scale returns o with every count multiplied by k.
func (o OpCount) Scale(k int64) OpCount {
	return OpCount{
		MatMulMACs: o.MatMulMACs * k,
		EWMul:      o.EWMul * k,
		EWAdd:      o.EWAdd * k,
		Activation: o.Activation * k,
	}
}

// FLOPs returns total floating-point operations (a MAC is 2 FLOPs).
func (o OpCount) FLOPs() int64 {
	return 2*o.MatMulMACs + o.EWMul + o.EWAdd + o.Activation
}

// EWOps returns the element-wise operation total (the quantity the R2A
// scheduler balances against MatMulMACs).
func (o OpCount) EWOps() int64 { return o.EWMul + o.EWAdd + o.Activation }

// ForwardOps returns the work of one FW cell: FW-MatMul (4 gates ×
// (input·H + H·H) MACs per sample) plus FW-EW (state update and
// activations).
func ForwardOps(input, hidden, batch int) OpCount {
	b := int64(batch)
	h := int64(hidden)
	in := int64(input)
	return OpCount{
		MatMulMACs: b * 4 * (in*h + h*h),
		// s = f⊙s' + i⊙c̃ (2 mul, 1 add); h = o⊙tanh(s) (1 mul)
		EWMul: b * 3 * h,
		EWAdd: b * 1 * h,
		// 4 gate activations + tanh(s)
		Activation: b * 5 * h,
	}
}

// BackwardOps returns the work of one baseline BP cell: BP-EW (P1 and
// P2 interleaved) plus BP-MatMul (δX/δH propagation and δW/δU outer
// products — twice the FW MatMul volume).
func BackwardOps(input, hidden, batch int) OpCount {
	p1 := P1Ops(hidden, batch)
	p2 := P2Ops(hidden, batch, 0)
	return OpCount{
		MatMulMACs: int64(batch) * 8 * (int64(input)*int64(hidden) + int64(hidden)*int64(hidden)),
		EWMul:      p1.EWMul + p2.EWMul,
		EWAdd:      p1.EWAdd + p2.EWAdd,
		Activation: p1.Activation,
	}
}

// P1Ops returns the work of computing the six BP-EW-P1 products for one
// cell. Under MS1 this moves into the FW pass.
func P1Ops(hidden, batch int) OpCount {
	b := int64(batch)
	h := int64(hidden)
	return OpCount{
		// Pf: 2 mul 1 sub; Pi: 2 mul 1 sub; Pc: 2 mul 1 sub;
		// Po: 2 mul 1 sub; Ps: 2 mul 1 sub; Pfs: copy. Plus tanh(s).
		EWMul:      b * 10 * h,
		EWAdd:      b * 5 * h,
		Activation: b * h, // tanh(s) reused across Po/Ps
	}
}

// P2Ops returns the work of BP-EW-P2 for one cell given the fraction of
// P1 entries pruned to zero (sparsity in [0,1]); a zero P1 operand lets
// the PE skip the product (paper Sec. IV-A).
func P2Ops(hidden, batch int, sparsity float64) OpCount {
	b := int64(batch)
	h := int64(hidden)
	dense := float64(b * h)
	kept := dense * (1 - sparsity)
	return OpCount{
		// δô, δf̂, δî, δĉ, δS': 1 mul each against a P1 operand
		// (skippable); δs: 1 mul (Ps, skippable) + up to 2 adds.
		EWMul: int64(kept * 6),
		EWAdd: b * 2 * h,
	}
}

// BackwardFromP1Ops returns the BP-cell work under MS1: BP-EW-P2 with
// the given P1 sparsity plus BP-MatMul where gate-gradient rows whose
// P1 factor was pruned contribute zero MACs.
func BackwardFromP1Ops(input, hidden, batch int, sparsity float64) OpCount {
	p2 := P2Ops(hidden, batch, sparsity)
	macs := float64(int64(batch)*8*(int64(input)*int64(hidden)+int64(hidden)*int64(hidden))) * (1 - sparsity)
	return OpCount{
		MatMulMACs: int64(macs),
		EWMul:      p2.EWMul,
		EWAdd:      p2.EWAdd,
	}
}
