package lstm

import (
	"etalstm/internal/obs"
	"etalstm/internal/tensor"
)

// Workspace object slots for the sparse-backward headers (slots 1 and 2
// belong to FWCache and P1, see cell.go).
const (
	wsSlotSparseP1 uint8 = 3
	wsSlotTopK     uint8 = 4
)

// The six P1 planes in Matrices() order. The first four coincide with
// the Gate constants (Pf↔GateF … Po↔GateO), which is what lets the
// sparse BP-MatMul index planes[g] directly.
const (
	planePf = iota
	planePi
	planePc
	planePo
	planePs
	planePfs
	numPlanes
)

// pairPlane is one P1 product in CSR-style (value, index) form: row i's
// surviving pairs live at positions start[i]:start[i+1] of idx/val,
// with idx holding column offsets in ascending order — the software
// image of the DMA's WT data / WT index queue pair.
type pairPlane struct {
	start []int32 // len batch+1
	idx   []int32
	val   []float32
}

// rowIdx returns row i's surviving column indices.
func (pl *pairPlane) rowIdx(i int) []int32 { return pl.idx[pl.start[i]:pl.start[i+1]] }

// SparseP1 is the pair-encoded form of a pruned P1 set — what the BP
// cell's sparse kernels consume instead of the dense planes. Zeros
// (pruned entries) are represented by absence; everything else is
// stored exactly.
type SparseP1 struct {
	batch, hidden int
	planes        [numPlanes]pairPlane
}

// NNZ returns the total surviving pairs across the six planes.
func (s *SparseP1) NNZ() int {
	n := 0
	for i := range s.planes {
		n += len(s.planes[i].idx)
	}
	return n
}

// Density returns NNZ over the dense element count — 1 minus the prune
// ratio the BP-EW-P2/BP-MatMul spans can skip.
func (s *SparseP1) Density() float64 {
	total := numPlanes * s.batch * s.hidden
	if total == 0 {
		return 0
	}
	return float64(s.NNZ()) / float64(total)
}

// release resets the plane slices (keeping their capacity, so warm
// cycles stay allocation-free) and recycles the header.
func (s *SparseP1) release(ws *tensor.Workspace) {
	for i := range s.planes {
		pl := &s.planes[i]
		pl.start = pl.start[:0]
		pl.idx = pl.idx[:0]
		pl.val = pl.val[:0]
	}
	s.batch, s.hidden = 0, 0
	ws.PutObj(wsSlotSparseP1, s)
}

// getSparseP1 pops a recycled header or allocates one.
func getSparseP1(ws *tensor.Workspace) *SparseP1 {
	if v := ws.GetObj(wsSlotSparseP1); v != nil {
		return v.(*SparseP1)
	}
	return &SparseP1{}
}

// EncodeP1Sparse pair-encodes a (typically pruned) P1 set. This is the
// software stand-in for the DMA compression module emitting value+index
// queues, so it records under BP-EW-P1 — the phase that produced the
// products — keeping the BP-EW-P2 and BP-MatMul spans a clean measure
// of the kernels that consume the pairs. p1 itself is left intact.
func EncodeP1Sparse(ws *tensor.Workspace, p1 *P1) *SparseP1 {
	sp := ws.Recorder().Begin(obs.PhaseBPEWP1)
	s := getSparseP1(ws)
	s.batch, s.hidden = p1.Pf.Rows, p1.Pf.Cols
	for pi, m := range p1.Matrices() {
		pl := &s.planes[pi]
		pl.start = append(pl.start[:0], 0)
		pl.idx = pl.idx[:0]
		pl.val = pl.val[:0]
		for i := 0; i < m.Rows; i++ {
			for j, v := range m.Row(i) {
				if v != 0 {
					pl.idx = append(pl.idx, int32(j))
					pl.val = append(pl.val, v)
				}
			}
			pl.start = append(pl.start, int32(len(pl.idx)))
		}
	}
	sp.End()
	return s
}

// scatterMul writes dst[k] = src[k]·val at the plane's surviving
// positions. Everywhere else dst keeps the exact zero it was cleared
// to, which is what the dense kernel's product against a pruned (zero)
// P1 entry yields.
func scatterMul(dst, src *tensor.Matrix, pl *pairPlane, hidden int) {
	for i := 0; i+1 < len(pl.start); i++ {
		off := i * hidden
		for n := pl.start[i]; n < pl.start[i+1]; n++ {
			k := off + int(pl.idx[n])
			dst.Data[k] = src.Data[k] * pl.val[n]
		}
	}
}

// BackwardFromP1Sparse is BackwardFromP1 driven by the (value, index)
// pairs of a pruned P1 set: BP-EW-P2 touches only surviving pairs, and
// BP-MatMul's inner products gather over each gate's surviving columns
// (the Omni-PE's index-driven operand fetch). topK > 0 additionally
// caps each batch row of the weight-gradient MatMuls to its topK
// largest-|δgate| columns (Zhu et al., arXiv:1806.00512); propagated
// gradients (δX, δH_{t-1}) always use the full pattern.
//
// Every arithmetic difference from the dense kernel is the skipping of
// terms that are exact zeros there, in an accumulation order that
// preserves the dense per-accumulator order — so at any prune
// threshold the result matches BackwardFromP1 on the same pruned set
// bitwise (modulo the sign of exact zeros, which no comparison in this
// codebase distinguishes), and with topK ≥ hidden the top-k path is the
// identity. The check package's sparse equivalence matrix enforces
// both.
func BackwardFromP1Sparse(ws *tensor.Workspace, p *Params, grads *Grads, x, hPrev *tensor.Matrix, p1 *P1, in BPInput, topK int) BPOutput {
	sp1 := EncodeP1Sparse(ws, p1)
	span := ws.Recorder().Begin(obs.PhaseBPEWP2)
	batch := p1.Pf.Rows
	hidden := p.Hidden

	dh := ws.Get(batch, hidden)
	if in.DY != nil {
		tensor.AddInPlace(dh, in.DY)
	}
	if in.DH != nil {
		tensor.AddInPlace(dh, in.DH)
	}

	// δs = δh⊙Ps + δS_{t+1}, walked over Ps's pairs only: where Ps was
	// pruned the product is an exact zero and δs is just the carried δS
	// value the buffer already holds. Adding the product onto the carried
	// value reproduces the dense expression bitwise (float add commutes).
	ds := ws.Get(batch, hidden)
	if in.DS != nil {
		copy(ds.Data, in.DS.Data)
	}
	pl := &sp1.planes[planePs]
	for i := 0; i < batch; i++ {
		off := i * hidden
		for n := pl.start[i]; n < pl.start[i+1]; n++ {
			k := off + int(pl.idx[n])
			ds.Data[k] = dh.Data[k]*pl.val[n] + ds.Data[k]
		}
	}

	var dGate [NumGates]*tensor.Matrix
	for g := Gate(0); g < NumGates; g++ {
		dGate[g] = ws.Get(batch, hidden)
	}
	dsPrev := ws.Get(batch, hidden)
	scatterMul(dGate[GateO], dh, &sp1.planes[planePo], hidden)
	scatterMul(dGate[GateF], ds, &sp1.planes[planePf], hidden)
	scatterMul(dGate[GateI], ds, &sp1.planes[planePi], hidden)
	scatterMul(dGate[GateC], ds, &sp1.planes[planePc], hidden)
	scatterMul(dsPrev, ds, &sp1.planes[planePfs], hidden)
	ws.Put(dh)
	ws.Put(ds)
	span.End()

	out := sparseMatmulBackward(ws, p, grads, x, hPrev, sp1, &dGate, dsPrev, topK)
	ws.PutAll(dGate[:]...)
	sp1.release(ws)
	return out
}

// sparseMatmulBackward is matmulBackward with every inner product
// gathering over the gate's surviving pattern instead of all hidden
// columns. δgate_g is zero wherever its P1 plane was pruned (plane g —
// the gate and plane orders coincide), so each skipped term is a
// multiply-add of an exact zero. Per-accumulator accumulation order
// matches the dense kernel: gates ascend, batch rows ascend, columns
// ascend.
func sparseMatmulBackward(ws *tensor.Workspace, p *Params, grads *Grads, x, hPrev *tensor.Matrix, sp1 *SparseP1, dGate *[NumGates]*tensor.Matrix, dsPrev *tensor.Matrix, topK int) BPOutput {
	span := ws.Recorder().Begin(obs.PhaseBPMatMul)
	batch := dsPrev.Rows
	hidden := p.Hidden
	dx := ws.Get(batch, p.Input)
	dhPrev := ws.Get(batch, p.Hidden)
	sel := getTopKSelector(ws)
	for g := Gate(0); g < NumGates; g++ {
		pl := &sp1.planes[g]
		dg := dGate[g]
		// δX_t += δgate_g·W_gᵀ ; δH_{t-1} += δgate_g·U_gᵀ. An empty
		// pattern row contributes exactly zero and is skipped whole.
		for i := 0; i < batch; i++ {
			pat := pl.rowIdx(i)
			if len(pat) == 0 {
				continue
			}
			dgrow := dg.Row(i)
			dxrow := dx.Row(i)
			for j := 0; j < p.Input; j++ {
				wrow := p.W[g].Row(j)
				var sum float32
				for _, kk := range pat {
					sum += dgrow[kk] * wrow[kk]
				}
				dxrow[j] += sum
			}
			dhrow := dhPrev.Row(i)
			for j := 0; j < hidden; j++ {
				urow := p.U[g].Row(j)
				var sum float32
				for _, kk := range pat {
					sum += dgrow[kk] * urow[kk]
				}
				dhrow[j] += sum
			}
		}
		if grads == nil {
			continue
		}
		// δW_g += x_tᵀ⊗δgate_g ; δU_g += h_{t-1}ᵀ⊗δgate_g ; δB_g += Σδgate_g
		// — the weight-gradient side, where the per-row top-k structured
		// sparsifier applies.
		for k := 0; k < batch; k++ {
			pat := pl.rowIdx(k)
			if len(pat) == 0 {
				continue
			}
			dgrow := dg.Row(k)
			if topK > 0 {
				pat = sel.Filter(pat, dgrow, topK)
			}
			for i, av := range x.Row(k) {
				if av == 0 {
					continue
				}
				wrow := grads.W[g].Row(i)
				for _, kk := range pat {
					wrow[kk] += av * dgrow[kk]
				}
			}
			for i, av := range hPrev.Row(k) {
				if av == 0 {
					continue
				}
				urow := grads.U[g].Row(i)
				for _, kk := range pat {
					urow[kk] += av * dgrow[kk]
				}
			}
			brow := grads.B[g]
			for _, kk := range pat {
				brow[kk] += dgrow[kk]
			}
		}
	}
	sel.put(ws)
	span.End()
	return BPOutput{DX: dx, DHPrev: dhPrev, DSPrev: dsPrev}
}

// TopKSelector picks per-row top-k column subsets for the structured
// weight-gradient sparsifier. It owns reusable scratch, so a warm
// selector filters without allocating.
type TopKSelector struct {
	absv []float32
	keep []int32
}

// getTopKSelector pops a recycled selector or allocates one.
func getTopKSelector(ws *tensor.Workspace) *TopKSelector {
	if v := ws.GetObj(wsSlotTopK); v != nil {
		return v.(*TopKSelector)
	}
	return &TopKSelector{}
}

// put recycles the selector (scratch keeps its capacity).
func (s *TopKSelector) put(ws *tensor.Workspace) { ws.PutObj(wsSlotTopK, s) }

// Filter returns the members of idx whose |row[idx[n]]| rank among the
// k largest, preserving ascending index order. Ties at the cut
// magnitude keep the smallest indices, making the selection fully
// deterministic. k <= 0 or k >= len(idx) returns idx unchanged — the
// bitwise identity the equivalence matrix asserts at k = rowlen. The
// returned slice aliases either idx or the selector's scratch and is
// valid until the next Filter call.
func (s *TopKSelector) Filter(idx []int32, row []float32, k int) []int32 {
	if k <= 0 || k >= len(idx) {
		return idx
	}
	s.absv = s.absv[:0]
	for _, j := range idx {
		v := row[j]
		if v < 0 {
			v = -v
		}
		s.absv = append(s.absv, v)
	}
	cut := kthLargest(s.absv, k)
	greater := 0
	for _, j := range idx {
		v := row[j]
		if v < 0 {
			v = -v
		}
		if v > cut {
			greater++
		}
	}
	ties := k - greater
	s.keep = s.keep[:0]
	for _, j := range idx {
		v := row[j]
		if v < 0 {
			v = -v
		}
		if v > cut {
			s.keep = append(s.keep, j)
		} else if v == cut && ties > 0 {
			s.keep = append(s.keep, j)
			ties--
		}
	}
	return s.keep
}

// kthLargest returns the k-th largest element (1-based) of a,
// partially reordering a in place (iterative quickselect, middle
// pivot).
func kthLargest(a []float32, k int) float32 {
	target := len(a) - k
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j
		case target >= i:
			lo = i
		default:
			return a[target]
		}
	}
	return a[target]
}
