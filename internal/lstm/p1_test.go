package lstm

import (
	"math"
	"testing"
	"testing/quick"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// TestP1Equivalence is the load-bearing MS1 correctness test: BP from
// precomputed P1 products must reproduce the baseline BP bit-for-bit
// (up to float32 association noise).
func TestP1Equivalence(t *testing.T) {
	const input, hidden, batch = 6, 5, 4
	p, x, h0, s0 := newTestSetup(21, input, hidden, batch)
	r := rng.New(300)
	dy := tensor.New(batch, hidden)
	dh := tensor.New(batch, hidden)
	ds := tensor.New(batch, hidden)
	dy.RandInit(r, 1)
	dh.RandInit(r, 1)
	ds.RandInit(r, 1)

	_, _, cache := Forward(nil, p, x, h0, s0)
	p1 := ComputeP1(nil, cache)

	gBase := NewGrads(p)
	outBase := Backward(nil, p, gBase, cache, BPInput{DY: dy, DH: dh, DS: ds})

	gP1 := NewGrads(p)
	outP1 := BackwardFromP1(nil, p, gP1, x, h0, p1, BPInput{DY: dy, DH: dh, DS: ds})

	const tol = 1e-5
	if !outBase.DX.Equal(outP1.DX, tol) {
		t.Error("DX mismatch")
	}
	if !outBase.DHPrev.Equal(outP1.DHPrev, tol) {
		t.Error("DHPrev mismatch")
	}
	if !outBase.DSPrev.Equal(outP1.DSPrev, tol) {
		t.Error("DSPrev mismatch")
	}
	for g := Gate(0); g < NumGates; g++ {
		if !gBase.W[g].Equal(gP1.W[g], tol) {
			t.Errorf("W[%v] mismatch", g)
		}
		if !gBase.U[g].Equal(gP1.U[g], tol) {
			t.Errorf("U[%v] mismatch", g)
		}
	}
}

func TestP1ValueRange(t *testing.T) {
	// Every P1 product is a composition of values in [-1,1] when the
	// running cell state stays bounded, so |P1| must stay ≤ max(|s'|,1).
	p, x, h0, s0 := newTestSetup(22, 8, 8, 4)
	_, _, cache := Forward(nil, p, x, h0, s0)
	p1 := ComputeP1(nil, cache)
	bound := float64(s0.MaxAbs())
	if bound < 1 {
		bound = 1
	}
	for i, m := range p1.Matrices() {
		if v := float64(m.MaxAbs()); v > bound+1e-6 {
			t.Fatalf("P1[%d] out of range: %v > %v", i, v, bound)
		}
	}
}

// TestP1MoreCompressible reproduces the paper's Fig. 6 observation in
// miniature: the P1 products concentrate far more mass below 0.1 than
// the raw FW intermediates do.
func TestP1MoreCompressible(t *testing.T) {
	const input, hidden, batch = 32, 64, 16
	p, x, h0, s0 := newTestSetup(23, input, hidden, batch)
	_, _, cache := Forward(nil, p, x, h0, s0)
	p1 := ComputeP1(nil, cache)

	rawFrac := 0.0
	raws := []*tensor.Matrix{cache.F, cache.I, cache.C, cache.O, cache.S}
	for _, m := range raws {
		rawFrac += m.FracBelow(0.1)
	}
	rawFrac /= float64(len(raws))

	p1Frac := 0.0
	for _, m := range p1.Matrices() {
		p1Frac += m.FracBelow(0.1)
	}
	p1Frac /= 6

	if p1Frac <= rawFrac {
		t.Fatalf("P1 must be more compressible: raw %.3f vs p1 %.3f", rawFrac, p1Frac)
	}
	if p1Frac < 0.35 {
		t.Fatalf("P1 near-zero fraction implausibly low: %.3f", p1Frac)
	}
}

func TestForwardWithP1MatchesSeparate(t *testing.T) {
	p, x, h0, s0 := newTestSetup(24, 4, 4, 2)
	h1, s1, p1a := ForwardWithP1(nil, p, x, h0, s0)
	h2, s2, cache := Forward(nil, p, x, h0, s0)
	p1b := ComputeP1(nil, cache)
	if !h1.Equal(h2, 0) || !s1.Equal(s2, 0) {
		t.Fatal("outputs differ")
	}
	ma, mb := p1a.Matrices(), p1b.Matrices()
	for i := range ma {
		if !ma[i].Equal(mb[i], 0) {
			t.Fatalf("P1 matrix %d differs", i)
		}
	}
}

func TestP1Bytes(t *testing.T) {
	p, x, h0, s0 := newTestSetup(25, 4, 5, 3)
	_, _, p1 := ForwardWithP1(nil, p, x, h0, s0)
	if p1.Bytes() != 6*3*5*4 {
		t.Fatalf("P1 bytes: %d", p1.Bytes())
	}
}

// Property: P1 equivalence holds across random seeds and gradient
// sparsity patterns.
func TestPropertyP1Equivalence(t *testing.T) {
	f := func(seed uint64) bool {
		p, x, h0, s0 := newTestSetup(seed, 3, 4, 2)
		r := rng.New(seed ^ 0xabc)
		dy := tensor.New(2, 4)
		dy.RandInit(r, 1)
		_, _, cache := Forward(nil, p, x, h0, s0)
		p1 := ComputeP1(nil, cache)
		gA := NewGrads(p)
		oA := Backward(nil, p, gA, cache, BPInput{DY: dy})
		gB := NewGrads(p)
		oB := BackwardFromP1(nil, p, gB, x, h0, p1, BPInput{DY: dy})
		return oA.DX.Equal(oB.DX, 1e-5) &&
			oA.DSPrev.Equal(oB.DSPrev, 1e-5) &&
			gA.W[GateC].Equal(gB.W[GateC], 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOpCountsConsistency(t *testing.T) {
	fw := ForwardOps(512, 1024, 16)
	bp := BackwardOps(512, 1024, 16)
	if bp.MatMulMACs != 2*fw.MatMulMACs {
		t.Fatalf("BP MatMul must be 2× FW: %d vs %d", bp.MatMulMACs, fw.MatMulMACs)
	}
	if fw.FLOPs() <= 0 || bp.FLOPs() <= 0 {
		t.Fatal("op counts must be positive")
	}
	// MS1 moves P1 into FW; the sum of reordered parts must not exceed
	// the baseline total EW work by more than the P1 recompute savings.
	p1 := P1Ops(1024, 16)
	p2dense := P2Ops(1024, 16, 0)
	if p1.EWOps()+p2dense.EWOps() > bp.EWOps()+fw.EWOps() {
		t.Fatal("reordered EW work exceeds baseline total")
	}
}

func TestBackwardFromP1OpsSparsityMonotone(t *testing.T) {
	dense := BackwardFromP1Ops(512, 1024, 16, 0)
	sparse := BackwardFromP1Ops(512, 1024, 16, 0.65)
	if sparse.MatMulMACs >= dense.MatMulMACs {
		t.Fatal("sparsity must reduce MatMul MACs")
	}
	if sparse.EWMul >= dense.EWMul {
		t.Fatal("sparsity must reduce EW multiplies")
	}
	zero := BackwardFromP1Ops(512, 1024, 16, 1)
	if zero.MatMulMACs != 0 {
		t.Fatal("full sparsity must zero MatMul work")
	}
}

func TestOpCountArithmetic(t *testing.T) {
	a := OpCount{MatMulMACs: 1, EWMul: 2, EWAdd: 3, Activation: 4}
	b := a.Add(a)
	if b.MatMulMACs != 2 || b.Activation != 8 {
		t.Fatalf("Add: %+v", b)
	}
	c := a.Scale(3)
	if c.EWMul != 6 {
		t.Fatalf("Scale: %+v", c)
	}
	if a.FLOPs() != 2*1+2+3+4 {
		t.Fatalf("FLOPs: %d", a.FLOPs())
	}
	if a.EWOps() != 9 {
		t.Fatalf("EWOps: %d", a.EWOps())
	}
}

func TestP1SparsityZeroesGradients(t *testing.T) {
	// Pruning a P1 entry to zero must zero the matching gate gradient —
	// the computation-skipping contract of the DMA decoder.
	p, x, h0, s0 := newTestSetup(26, 4, 4, 2)
	r := rng.New(400)
	dy := tensor.New(2, 4)
	dy.RandInit(r, 1)
	_, _, cache := Forward(nil, p, x, h0, s0)
	p1 := ComputeP1(nil, cache)
	p1.Pi.Zero() // prune the entire input-gate P1 plane
	g := NewGrads(p)
	BackwardFromP1(nil, p, g, x, h0, p1, BPInput{DY: dy})
	if g.W[GateI].AbsSum() != 0 || g.U[GateI].AbsSum() != 0 {
		t.Fatal("zero Pi must zero input-gate weight gradients")
	}
	if math.Abs(g.W[GateO].AbsSum()) == 0 {
		t.Fatal("other gates must still receive gradients")
	}
}
