package lstm

import (
	"testing"

	"etalstm/internal/obs"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// TestWarmCellLoopAllocs pins the workspace promise at the kernel level:
// once the free lists are warm, a full FW+BP cell cycle (both the
// baseline raw-cache flow and the MS1 reordered P1 flow) performs zero
// heap allocations. Geometry is kept below the tensor parallel-dispatch
// threshold and kernel workers are pinned to 1 so goroutine spawning
// cannot leak into the measurement.
func TestWarmCellLoopAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	const input, hidden, batch = 16, 16, 4
	r := rng.New(31)
	p := NewParams(input, hidden)
	p.Init(r)
	x := tensor.New(batch, input)
	h0 := tensor.New(batch, hidden)
	s0 := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	h0.RandInit(r, 0.5)
	s0.RandInit(r, 0.5)
	dy := tensor.New(batch, hidden)
	dy.RandInit(r, 1)
	grads := NewGrads(p)
	ws := tensor.NewWorkspace()

	rawCycle := func() {
		h, _, cache := Forward(ws, p, x, h0, s0)
		out := Backward(ws, p, grads, cache, BPInput{DY: dy})
		ws.PutAll(h, out.DX, out.DHPrev, out.DSPrev)
		cache.Release(ws)
	}
	p1Cycle := func() {
		h, s, p1 := ForwardWithP1(ws, p, x, h0, s0)
		out := BackwardFromP1(ws, p, grads, x, h0, p1, BPInput{DY: dy})
		ws.PutAll(h, s, out.DX, out.DHPrev, out.DSPrev)
		p1.Release(ws)
	}

	// Warm the free lists, then demand a zero-allocation steady state —
	// first on the default path (recorder off: span Begin/End must not
	// even read the clock), then with phase recording enabled (the
	// recorder writes into fixed arrays, so it must stay alloc-free too).
	rawCycle()
	p1Cycle()
	if avg := testing.AllocsPerRun(50, rawCycle); avg > 0 {
		t.Errorf("warm raw FW+BP cycle (recorder off) allocates %.2f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, p1Cycle); avg > 0 {
		t.Errorf("warm P1 FW+BP cycle (recorder off) allocates %.2f times, want 0", avg)
	}

	ws.SetRecorder(obs.NewRecorder())
	defer ws.SetRecorder(nil)
	rawCycle()
	p1Cycle()
	if avg := testing.AllocsPerRun(50, rawCycle); avg > 0 {
		t.Errorf("warm raw FW+BP cycle (recorder on) allocates %.2f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, p1Cycle); avg > 0 {
		t.Errorf("warm P1 FW+BP cycle (recorder on) allocates %.2f times, want 0", avg)
	}
	if rec := ws.Recorder(); rec.Observed(obs.PhaseFW) == 0 || rec.Observed(obs.PhaseBPMatMul) == 0 {
		t.Error("recorder-on cycles recorded no spans — instrumentation is disconnected")
	}
}

// BenchmarkWarmCellCycle is the paired overhead benchmark for phase
// spans: the same warm FW+BP cycle with the recorder off and on. The
// off/on delta bounds the telemetry cost of the hot path; the design
// budget is <5% (two monotonic clock reads per instrumented phase
// against a full cell FW+BP), checked by comparing the pairs, e.g.
//
//	go test -bench WarmCellCycle -count 10 ./internal/lstm | benchstat -
func BenchmarkWarmCellCycle(b *testing.B) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	const input, hidden, batch = 16, 16, 4
	r := rng.New(31)
	p := NewParams(input, hidden)
	p.Init(r)
	x := tensor.New(batch, input)
	h0 := tensor.New(batch, hidden)
	s0 := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	h0.RandInit(r, 0.5)
	s0.RandInit(r, 0.5)
	dy := tensor.New(batch, hidden)
	dy.RandInit(r, 1)
	grads := NewGrads(p)
	ws := tensor.NewWorkspace()

	cycle := func() {
		h, _, cache := Forward(ws, p, x, h0, s0)
		out := Backward(ws, p, grads, cache, BPInput{DY: dy})
		ws.PutAll(h, out.DX, out.DHPrev, out.DSPrev)
		cache.Release(ws)
	}
	for _, bc := range []struct {
		name string
		rec  *obs.Recorder
	}{
		{"recorder-off", nil},
		{"recorder-on", obs.NewRecorder()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ws.SetRecorder(bc.rec)
			defer ws.SetRecorder(nil)
			cycle() // warm the free lists outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle()
			}
		})
	}
}
