package lstm

import (
	"testing"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// TestWarmCellLoopAllocs pins the workspace promise at the kernel level:
// once the free lists are warm, a full FW+BP cell cycle (both the
// baseline raw-cache flow and the MS1 reordered P1 flow) performs zero
// heap allocations. Geometry is kept below the tensor parallel-dispatch
// threshold and kernel workers are pinned to 1 so goroutine spawning
// cannot leak into the measurement.
func TestWarmCellLoopAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	const input, hidden, batch = 16, 16, 4
	r := rng.New(31)
	p := NewParams(input, hidden)
	p.Init(r)
	x := tensor.New(batch, input)
	h0 := tensor.New(batch, hidden)
	s0 := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	h0.RandInit(r, 0.5)
	s0.RandInit(r, 0.5)
	dy := tensor.New(batch, hidden)
	dy.RandInit(r, 1)
	grads := NewGrads(p)
	ws := tensor.NewWorkspace()

	rawCycle := func() {
		h, _, cache := Forward(ws, p, x, h0, s0)
		out := Backward(ws, p, grads, cache, BPInput{DY: dy})
		ws.PutAll(h, out.DX, out.DHPrev, out.DSPrev)
		cache.Release(ws)
	}
	p1Cycle := func() {
		h, s, p1 := ForwardWithP1(ws, p, x, h0, s0)
		out := BackwardFromP1(ws, p, grads, x, h0, p1, BPInput{DY: dy})
		ws.PutAll(h, s, out.DX, out.DHPrev, out.DSPrev)
		p1.Release(ws)
	}

	// Warm the free lists, then demand a zero-allocation steady state.
	rawCycle()
	p1Cycle()
	if avg := testing.AllocsPerRun(50, rawCycle); avg > 0 {
		t.Errorf("warm raw FW+BP cycle allocates %.2f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, p1Cycle); avg > 0 {
		t.Errorf("warm P1 FW+BP cycle allocates %.2f times, want 0", avg)
	}
}
