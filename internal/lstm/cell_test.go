package lstm

import (
	"math"
	"testing"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func newTestSetup(seed uint64, input, hidden, batch int) (*Params, *tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
	r := rng.New(seed)
	p := NewParams(input, hidden)
	p.Init(r)
	x := tensor.New(batch, input)
	h0 := tensor.New(batch, hidden)
	s0 := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	h0.RandInit(r, 0.5)
	s0.RandInit(r, 0.5)
	return p, x, h0, s0
}

func TestForwardShapes(t *testing.T) {
	p, x, h0, s0 := newTestSetup(1, 6, 5, 3)
	h, s, cache := Forward(nil, p, x, h0, s0)
	if h.Rows != 3 || h.Cols != 5 || s.Rows != 3 || s.Cols != 5 {
		t.Fatalf("bad output shapes h=%v s=%v", h, s)
	}
	if cache.F.Rows != 3 || cache.F.Cols != 5 {
		t.Fatalf("bad cache shape %v", cache.F)
	}
}

func TestForwardGateRanges(t *testing.T) {
	p, x, h0, s0 := newTestSetup(2, 8, 8, 4)
	_, _, cache := Forward(nil, p, x, h0, s0)
	for _, m := range []*tensor.Matrix{cache.F, cache.I, cache.O} {
		for _, v := range m.Data {
			if v < 0 || v > 1 {
				t.Fatalf("sigmoid gate out of [0,1]: %v", v)
			}
		}
	}
	for _, v := range cache.C.Data {
		if v < -1 || v > 1 {
			t.Fatalf("tanh gate out of [-1,1]: %v", v)
		}
	}
}

func TestForwardStateUpdateIdentity(t *testing.T) {
	// s_t must equal f⊙s_{t-1} + i⊙c̃ element-by-element.
	p, x, h0, s0 := newTestSetup(3, 4, 4, 2)
	_, s, cache := Forward(nil, p, x, h0, s0)
	for k := range s.Data {
		want := cache.F.Data[k]*s0.Data[k] + cache.I.Data[k]*cache.C.Data[k]
		if math.Abs(float64(s.Data[k]-want)) > 1e-6 {
			t.Fatalf("state update mismatch at %d", k)
		}
	}
}

func TestForwardHiddenIdentity(t *testing.T) {
	p, x, h0, s0 := newTestSetup(4, 4, 4, 2)
	h, s, cache := Forward(nil, p, x, h0, s0)
	for k := range h.Data {
		want := cache.O.Data[k] * tensor.Tanh32(s.Data[k])
		if math.Abs(float64(h.Data[k]-want)) > 1e-6 {
			t.Fatalf("hidden mismatch at %d", k)
		}
	}
}

func TestForgetBiasInit(t *testing.T) {
	r := rng.New(5)
	p := NewParams(3, 3)
	p.Init(r)
	for _, b := range p.B[GateF] {
		if b != 1 {
			t.Fatal("forget bias must init to 1")
		}
	}
	for _, g := range []Gate{GateI, GateC, GateO} {
		for _, b := range p.B[g] {
			if b != 0 {
				t.Fatalf("gate %v bias must init to 0", g)
			}
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	p1h, x1, h1, s1 := newTestSetup(6, 5, 5, 2)
	p2h, x2, h2, s2 := newTestSetup(6, 5, 5, 2)
	ha, _, _ := Forward(nil, p1h, x1, h1, s1)
	hb, _, _ := Forward(nil, p2h, x2, h2, s2)
	if !ha.Equal(hb, 0) {
		t.Fatal("forward must be deterministic for the same seed")
	}
}

// numericalGrad computes d loss / d theta by central differences, where
// loss = Σ h_t ⊙ mh + Σ s_t ⊙ ms for fixed random masks (so every output
// contributes a distinct gradient signal).
func numericalGrad(p *Params, x, h0, s0 *tensor.Matrix, mh, ms *tensor.Matrix, theta []float32, idx int) float64 {
	const eps = 1e-3
	orig := theta[idx]
	loss := func() float64 {
		h, s, _ := Forward(nil, p, x, h0, s0)
		var l float64
		for k := range h.Data {
			l += float64(h.Data[k]) * float64(mh.Data[k])
			l += float64(s.Data[k]) * float64(ms.Data[k])
		}
		return l
	}
	theta[idx] = orig + eps
	lp := loss()
	theta[idx] = orig - eps
	lm := loss()
	theta[idx] = orig
	return (lp - lm) / (2 * eps)
}

// TestBackwardGradCheck verifies every analytic gradient the BP cell
// produces (δW, δU, δb, δX, δH', δS') against central differences.
func TestBackwardGradCheck(t *testing.T) {
	const input, hidden, batch = 4, 3, 2
	p, x, h0, s0 := newTestSetup(7, input, hidden, batch)
	r := rng.New(99)
	mh := tensor.New(batch, hidden)
	ms := tensor.New(batch, hidden)
	mh.RandInit(r, 1)
	ms.RandInit(r, 1)

	_, _, cache := Forward(nil, p, x, h0, s0)
	grads := NewGrads(p)
	out := Backward(nil, p, grads, cache, BPInput{DY: mh, DS: ms})

	check := func(name string, analytic float32, num float64) {
		t.Helper()
		diff := math.Abs(float64(analytic) - num)
		denom := math.Max(1e-4, math.Abs(num)+math.Abs(float64(analytic)))
		if diff/denom > 2e-2 {
			t.Errorf("%s: analytic %v vs numeric %v", name, analytic, num)
		}
	}

	for g := Gate(0); g < NumGates; g++ {
		for _, idx := range []int{0, input*hidden - 1, hidden + 1} {
			num := numericalGrad(p, x, h0, s0, mh, ms, p.W[g].Data, idx)
			check(g.String()+".W", grads.W[g].Data[idx], num)
		}
		for _, idx := range []int{0, hidden*hidden - 1} {
			num := numericalGrad(p, x, h0, s0, mh, ms, p.U[g].Data, idx)
			check(g.String()+".U", grads.U[g].Data[idx], num)
		}
		for _, idx := range []int{0, hidden - 1} {
			num := numericalGrad(p, x, h0, s0, mh, ms, p.B[g], idx)
			check(g.String()+".B", grads.B[g][idx], num)
		}
	}
	// Input-side gradients.
	for _, idx := range []int{0, batch*input - 1} {
		num := numericalGrad(p, x, h0, s0, mh, ms, x.Data, idx)
		check("dX", out.DX.Data[idx], num)
	}
	for _, idx := range []int{0, batch*hidden - 1} {
		num := numericalGrad(p, x, h0, s0, mh, ms, h0.Data, idx)
		check("dHPrev", out.DHPrev.Data[idx], num)
	}
	for _, idx := range []int{0, batch*hidden - 1} {
		num := numericalGrad(p, x, h0, s0, mh, ms, s0.Data, idx)
		check("dSPrev", out.DSPrev.Data[idx], num)
	}
}

func TestBackwardNilInputs(t *testing.T) {
	// A BP cell at the last timestamp of a layer with no loss at that
	// step receives all-nil gradients and must produce zeros.
	p, x, h0, s0 := newTestSetup(8, 4, 4, 2)
	_, _, cache := Forward(nil, p, x, h0, s0)
	grads := NewGrads(p)
	out := Backward(nil, p, grads, cache, BPInput{})
	if out.DX.MaxAbs() != 0 || out.DHPrev.MaxAbs() != 0 || out.DSPrev.MaxAbs() != 0 {
		t.Fatal("zero input gradients must give zero output gradients")
	}
	if grads.AbsSum() != 0 {
		t.Fatal("zero input gradients must give zero weight gradients")
	}
}

func TestBackwardAccumulates(t *testing.T) {
	// Two BP calls on the same Grads must sum (Eq. 3's +=).
	p, x, h0, s0 := newTestSetup(9, 4, 4, 2)
	r := rng.New(100)
	dy := tensor.New(2, 4)
	dy.RandInit(r, 1)
	_, _, cache := Forward(nil, p, x, h0, s0)

	g1 := NewGrads(p)
	Backward(nil, p, g1, cache, BPInput{DY: dy})
	once := g1.W[GateF].Clone()
	Backward(nil, p, g1, cache, BPInput{DY: dy})
	twice := g1.W[GateF]
	want := tensor.Scale(nil, once, 2)
	if !twice.Equal(want, 1e-5) {
		t.Fatal("gradients must accumulate across BP cells")
	}
}

func TestGradsScaleAndAdd(t *testing.T) {
	p, x, h0, s0 := newTestSetup(10, 3, 3, 2)
	r := rng.New(101)
	dy := tensor.New(2, 3)
	dy.RandInit(r, 1)
	_, _, cache := Forward(nil, p, x, h0, s0)
	g := NewGrads(p)
	Backward(nil, p, g, cache, BPInput{DY: dy})
	sum := g.AbsSum()
	g.Scale(2)
	if math.Abs(g.AbsSum()-2*sum) > 1e-3*sum {
		t.Fatal("Scale must double AbsSum")
	}
	h := NewGrads(p)
	h.Add(g)
	if math.Abs(h.AbsSum()-g.AbsSum()) > 1e-6 {
		t.Fatal("Add into zero grads must copy")
	}
}

func TestParamsCloneIndependent(t *testing.T) {
	p, _, _, _ := newTestSetup(11, 3, 3, 1)
	c := p.Clone()
	c.W[GateF].Set(0, 0, 42)
	if p.W[GateF].At(0, 0) == 42 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestParamsBytes(t *testing.T) {
	p := NewParams(10, 20)
	// 4 gates × (10·20 + 20·20 + 20) floats × 4 bytes
	want := int64(4 * (200 + 400 + 20) * 4)
	if p.Bytes() != want {
		t.Fatalf("Bytes: got %d want %d", p.Bytes(), want)
	}
}

func TestCacheBytes(t *testing.T) {
	p, x, h0, s0 := newTestSetup(12, 6, 5, 3)
	_, _, cache := Forward(nil, p, x, h0, s0)
	if cache.IntermediateBytes() != 5*3*5*4 {
		t.Fatalf("IntermediateBytes: %d", cache.IntermediateBytes())
	}
	if cache.ActivationBytes() != int64(3*6*4+3*5*4) {
		t.Fatalf("ActivationBytes: %d", cache.ActivationBytes())
	}
}

func TestInferenceForwardMatchesForward(t *testing.T) {
	p, x, h0, s0 := newTestSetup(13, 4, 4, 2)
	h1, s1 := InferenceForward(nil, p, x, h0, s0)
	h2, s2, _ := Forward(nil, p, x, h0, s0)
	if !h1.Equal(h2, 0) || !s1.Equal(s2, 0) {
		t.Fatal("inference forward must match training forward")
	}
}

func TestRecomputeForwardRebuildsCache(t *testing.T) {
	p, x, h0, s0 := newTestSetup(14, 4, 4, 2)
	_, _, orig := Forward(nil, p, x, h0, s0)
	re := RecomputeForward(nil, p, x, h0, s0)
	if !re.F.Equal(orig.F, 0) || !re.S.Equal(orig.S, 0) {
		t.Fatal("recompute must rebuild identical intermediates")
	}
}

func TestUnrolledSequenceGradCheck(t *testing.T) {
	// Full BPTT over 3 timestamps of one layer: gradients through the
	// recurrent connections (h and s chains) must match numerics.
	const input, hidden, batch, steps = 3, 2, 2, 3
	r := rng.New(200)
	p := NewParams(input, hidden)
	p.Init(r)
	xs := make([]*tensor.Matrix, steps)
	for t0 := range xs {
		xs[t0] = tensor.New(batch, input)
		xs[t0].RandInit(r, 1)
	}
	mask := tensor.New(batch, hidden)
	mask.RandInit(r, 1)

	loss := func() float64 {
		h := tensor.New(batch, hidden)
		s := tensor.New(batch, hidden)
		for t0 := 0; t0 < steps; t0++ {
			h, s, _ = Forward(nil, p, xs[t0], h, s)
		}
		_ = s
		var l float64
		for k := range h.Data {
			l += float64(h.Data[k]) * float64(mask.Data[k])
		}
		return l
	}

	// Analytic: forward storing caches, then BP through time.
	h := tensor.New(batch, hidden)
	s := tensor.New(batch, hidden)
	caches := make([]*FWCache, steps)
	for t0 := 0; t0 < steps; t0++ {
		h, s, caches[t0] = Forward(nil, p, xs[t0], h, s)
	}
	grads := NewGrads(p)
	var dH, dS *tensor.Matrix
	for t0 := steps - 1; t0 >= 0; t0-- {
		in := BPInput{DH: dH, DS: dS}
		if t0 == steps-1 {
			in.DY = mask
		}
		out := Backward(nil, p, grads, caches[t0], in)
		dH, dS = out.DHPrev, out.DSPrev
	}

	const eps = 1e-3
	for g := Gate(0); g < NumGates; g++ {
		for _, idx := range []int{0, input*hidden - 1} {
			orig := p.W[g].Data[idx]
			p.W[g].Data[idx] = orig + eps
			lp := loss()
			p.W[g].Data[idx] = orig - eps
			lm := loss()
			p.W[g].Data[idx] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(grads.W[g].Data[idx])
			diff := math.Abs(ana - num)
			denom := math.Max(1e-4, math.Abs(num)+math.Abs(ana))
			if diff/denom > 3e-2 {
				t.Errorf("BPTT %v.W[%d]: analytic %v numeric %v", g, idx, ana, num)
			}
		}
		// Recurrent weights carry the through-time dependency.
		for _, idx := range []int{0, hidden*hidden - 1} {
			orig := p.U[g].Data[idx]
			p.U[g].Data[idx] = orig + eps
			lp := loss()
			p.U[g].Data[idx] = orig - eps
			lm := loss()
			p.U[g].Data[idx] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(grads.U[g].Data[idx])
			diff := math.Abs(ana - num)
			denom := math.Max(1e-4, math.Abs(num)+math.Abs(ana))
			if diff/denom > 3e-2 {
				t.Errorf("BPTT %v.U[%d]: analytic %v numeric %v", g, idx, ana, num)
			}
		}
	}
}
