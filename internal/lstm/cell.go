package lstm

import (
	"etalstm/internal/tensor"
)

// FWCache holds what the baseline training flow stores per FW cell for
// later reuse by the matching BP cell: the inputs (activations) and the
// five intermediate variables the paper identifies as the footprint
// upper-bound (f, i, c̃, o, s — paper Sec. III-B).
type FWCache struct {
	// Activations: inputs to the cell. Stored by every training flow.
	X     *tensor.Matrix // batch×input layer input x_t
	HPrev *tensor.Matrix // batch×hidden context h_{t-1}
	SPrev *tensor.Matrix // batch×hidden previous cell state s_{t-1}

	// Intermediate variables produced by FW-EW and consumed by BP-EW.
	F *tensor.Matrix // forget gate output
	I *tensor.Matrix // input gate output
	C *tensor.Matrix // cell (candidate) gate output c̃
	O *tensor.Matrix // output gate output
	S *tensor.Matrix // new cell state s_t
}

// IntermediateBytes returns the bytes of the cell's intermediate
// variables (f, i, c̃, o, s) — the quantity MS1 attacks.
func (c *FWCache) IntermediateBytes() int64 {
	return c.F.Bytes() + c.I.Bytes() + c.C.Bytes() + c.O.Bytes() + c.S.Bytes()
}

// ActivationBytes returns the bytes of the cell's stored activations
// (x_t and h_{t-1}; s_{t-1} aliases the previous cell's S).
func (c *FWCache) ActivationBytes() int64 {
	return c.X.Bytes() + c.HPrev.Bytes()
}

// Forward runs one FW cell (paper Fig. 2a): given layer input x
// (batch×input), context h_{t-1} and cell state s_{t-1} (batch×hidden),
// it returns the new context h_t, cell state s_t and the cache the BP
// cell will consume. x, hPrev and sPrev are retained by the cache, not
// copied; callers must not mutate them afterwards.
func Forward(p *Params, x, hPrev, sPrev *tensor.Matrix) (h, s *tensor.Matrix, cache *FWCache) {
	batch := x.Rows
	var raw [NumGates]*tensor.Matrix
	for g := Gate(0); g < NumGates; g++ {
		// FW-MatMul: raw_g = x·W_g + hPrev·U_g + b_g
		raw[g] = tensor.MatMul(nil, x, p.W[g])
		uh := tensor.MatMul(nil, hPrev, p.U[g])
		tensor.AddInPlace(raw[g], uh)
		tensor.AddRowVector(raw[g], raw[g], p.B[g])
	}

	// FW-EW: activations and state update.
	f := tensor.Sigmoid(nil, raw[GateF])
	i := tensor.Sigmoid(nil, raw[GateI])
	cg := tensor.Tanh(nil, raw[GateC])
	o := tensor.Sigmoid(nil, raw[GateO])

	s = tensor.New(batch, p.Hidden)
	for k := range s.Data {
		s.Data[k] = f.Data[k]*sPrev.Data[k] + i.Data[k]*cg.Data[k]
	}
	h = tensor.New(batch, p.Hidden)
	for k := range h.Data {
		h.Data[k] = o.Data[k] * tensor.Tanh32(s.Data[k])
	}

	cache = &FWCache{X: x, HPrev: hPrev, SPrev: sPrev, F: f, I: i, C: cg, O: o, S: s}
	return h, s, cache
}

// InferenceForward runs the FW cell without retaining any cache — the
// inference flow the paper contrasts against training, and the flow
// MS2 uses for FW cells whose BP cell is predicted insignificant.
func InferenceForward(p *Params, x, hPrev, sPrev *tensor.Matrix) (h, s *tensor.Matrix) {
	h, s, _ = Forward(p, x, hPrev, sPrev)
	return h, s
}

// BPInput carries the gradients flowing into a BP cell: δY_t from the
// layer above (or the loss), δH_t from the next timestamp's BP cell and
// δS_t, the cell-state gradient from the next timestamp.
type BPInput struct {
	DY *tensor.Matrix // batch×hidden, may be nil (no output gradient)
	DH *tensor.Matrix // batch×hidden, may be nil (last timestamp)
	DS *tensor.Matrix // batch×hidden, may be nil (last timestamp)
}

// BPOutput carries the gradients a BP cell produces for its neighbours.
type BPOutput struct {
	DX     *tensor.Matrix // batch×input, gradient for the layer below
	DHPrev *tensor.Matrix // batch×hidden, context gradient for t-1
	DSPrev *tensor.Matrix // batch×hidden, cell-state gradient for t-1
}

// Backward runs one baseline BP cell (paper Fig. 2b): BP-EW on the
// cached FW intermediates followed by BP-MatMul, accumulating weight
// gradients into grads (Eq. 3) and returning the propagated gradients
// (Eq. 2).
func Backward(p *Params, grads *Grads, cache *FWCache, in BPInput) BPOutput {
	batch := cache.F.Rows
	hidden := p.Hidden

	// Total gradient on h_t: δY_t (from above) + δH_t (from t+1).
	dh := tensor.New(batch, hidden)
	if in.DY != nil {
		tensor.AddInPlace(dh, in.DY)
	}
	if in.DH != nil {
		tensor.AddInPlace(dh, in.DH)
	}

	// BP-EW: gate gradients. These expressions interleave the P1 parts
	// (functions of FW intermediates only) with the P2 parts (products
	// with gradients); BackwardFromP1 performs the same math with P1
	// precomputed.
	dGate := make([]*tensor.Matrix, NumGates)
	for g := Gate(0); g < NumGates; g++ {
		dGate[g] = tensor.New(batch, hidden)
	}
	dsPrev := tensor.New(batch, hidden)
	dsTotal := tensor.New(batch, hidden)

	for k := 0; k < batch*hidden; k++ {
		f := cache.F.Data[k]
		i := cache.I.Data[k]
		c := cache.C.Data[k]
		o := cache.O.Data[k]
		s := cache.S.Data[k]
		sp := cache.SPrev.Data[k]
		ts := tensor.Tanh32(s)

		dhk := dh.Data[k]
		ds := dhk * o * (1 - ts*ts)
		if in.DS != nil {
			ds += in.DS.Data[k]
		}
		dsTotal.Data[k] = ds

		dGate[GateO].Data[k] = dhk * ts * o * (1 - o)
		dGate[GateF].Data[k] = ds * sp * f * (1 - f)
		dGate[GateI].Data[k] = ds * c * i * (1 - i)
		dGate[GateC].Data[k] = ds * i * (1 - c*c)
		dsPrev.Data[k] = ds * f
	}

	return matmulBackward(p, grads, cache.X, cache.HPrev, dGate, dsPrev)
}

// matmulBackward performs the BP-MatMul stage shared by the baseline
// and reordered flows: input/context gradients (Eq. 2) and weight
// gradient accumulation (Eq. 3).
func matmulBackward(p *Params, grads *Grads, x, hPrev *tensor.Matrix, dGate []*tensor.Matrix, dsPrev *tensor.Matrix) BPOutput {
	batch := dsPrev.Rows
	dx := tensor.New(batch, p.Input)
	dhPrev := tensor.New(batch, p.Hidden)
	for g := Gate(0); g < NumGates; g++ {
		// δX_t += δgate_g · W_gᵀ ; δH_{t-1} += δgate_g · U_gᵀ
		tensor.AddInPlace(dx, tensor.MatMulTransB(nil, dGate[g], p.W[g]))
		tensor.AddInPlace(dhPrev, tensor.MatMulTransB(nil, dGate[g], p.U[g]))
		if grads != nil {
			// δW_g += x_tᵀ ⊗ δgate_g ; δU_g += h_{t-1}ᵀ ⊗ δgate_g
			tensor.AddMatMulTransA(grads.W[g], x, dGate[g])
			tensor.AddMatMulTransA(grads.U[g], hPrev, dGate[g])
			tensor.SumRows(grads.B[g], dGate[g])
		}
	}
	return BPOutput{DX: dx, DHPrev: dhPrev, DSPrev: dsPrev}
}

// RecomputeForward re-runs the FW cell math from stored activations to
// rebuild the intermediates — the "recompute from scratch" extreme the
// paper dismisses as impractical (Sec. III-C). It exists so the ablation
// benches can quantify exactly how much BP latency full recomputation
// adds compared with MS1's reordering.
func RecomputeForward(p *Params, x, hPrev, sPrev *tensor.Matrix) *FWCache {
	_, _, cache := Forward(p, x, hPrev, sPrev)
	return cache
}
