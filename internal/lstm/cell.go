package lstm

import (
	"etalstm/internal/obs"
	"etalstm/internal/tensor"
)

// Workspace object slots for the two cache header types (see
// tensor.Workspace.GetObj). Each slot holds exactly one concrete type.
const (
	wsSlotFWCache uint8 = 1
	wsSlotP1      uint8 = 2
)

// FWCache holds what the baseline training flow stores per FW cell for
// later reuse by the matching BP cell: the inputs (activations) and the
// five intermediate variables the paper identifies as the footprint
// upper-bound (f, i, c̃, o, s — paper Sec. III-B).
//
// Ownership: the cache owns F/I/C/O/S (allocated from the workspace the
// producing Forward was given) and borrows X/HPrev/SPrev from the
// caller. Whoever consumes the cache — the matching BP cell, or
// InferenceForward when no BP will run — calls Release to hand the
// owned buffers back.
type FWCache struct {
	// Activations: inputs to the cell. Stored by every training flow.
	X     *tensor.Matrix // batch×input layer input x_t
	HPrev *tensor.Matrix // batch×hidden context h_{t-1}
	SPrev *tensor.Matrix // batch×hidden previous cell state s_{t-1}

	// Intermediate variables produced by FW-EW and consumed by BP-EW.
	F *tensor.Matrix // forget gate output
	I *tensor.Matrix // input gate output
	C *tensor.Matrix // cell (candidate) gate output c̃
	O *tensor.Matrix // output gate output
	S *tensor.Matrix // new cell state s_t
}

// IntermediateBytes returns the bytes of the cell's intermediate
// variables (f, i, c̃, o, s) — the quantity MS1 attacks.
func (c *FWCache) IntermediateBytes() int64 {
	return c.F.Bytes() + c.I.Bytes() + c.C.Bytes() + c.O.Bytes() + c.S.Bytes()
}

// ActivationBytes returns the bytes of the cell's stored activations
// (x_t and h_{t-1}; s_{t-1} aliases the previous cell's S).
func (c *FWCache) ActivationBytes() int64 {
	return c.X.Bytes() + c.HPrev.Bytes()
}

// Release returns the cache's owned buffers (F, I, C̃, O, S) to ws and
// recycles the header. The borrowed activations are merely dropped. The
// caller must hold no other reference to the owned matrices — note that
// S is the s_t the producing Forward returned, and that the next cell's
// cache borrows it as SPrev; Release is therefore only safe once the
// *following* cell has been consumed too (BP visits cells in reverse
// time order, which guarantees exactly that). Safe on a nil workspace.
func (c *FWCache) Release(ws *tensor.Workspace) {
	if c == nil {
		return
	}
	ws.PutAll(c.F, c.I, c.C, c.O, c.S)
	*c = FWCache{}
	ws.PutObj(wsSlotFWCache, c)
}

// getFWCache pops a recycled header or allocates one.
func getFWCache(ws *tensor.Workspace) *FWCache {
	if v := ws.GetObj(wsSlotFWCache); v != nil {
		return v.(*FWCache)
	}
	return &FWCache{}
}

// Forward runs one FW cell (paper Fig. 2a): given layer input x
// (batch×input), context h_{t-1} and cell state s_{t-1} (batch×hidden),
// it returns the new context h_t, cell state s_t and the cache the BP
// cell will consume. x, hPrev and sPrev are retained by the cache, not
// copied; callers must not mutate them afterwards.
//
// All scratch (the raw gate pre-activations) is drawn from ws and
// released before returning — the raw gates live only inside the FW
// cell, mirroring MS1's early-consume. h, s and the cache's owned
// buffers come from ws too; the caller (or cache.Release) returns them
// when their lifetime ends. ws may be nil, degrading every Get to a
// plain allocation.
func Forward(ws *tensor.Workspace, p *Params, x, hPrev, sPrev *tensor.Matrix) (h, s *tensor.Matrix, cache *FWCache) {
	sp := ws.Recorder().Begin(obs.PhaseFW)
	batch := x.Rows
	var raw [NumGates]*tensor.Matrix
	uh := ws.Get(batch, p.Hidden)
	for g := Gate(0); g < NumGates; g++ {
		// FW-MatMul: raw_g = x·W_g + hPrev·U_g + b_g
		raw[g] = tensor.MatMul(ws.Get(batch, p.Hidden), x, p.W[g])
		tensor.MatMul(uh, hPrev, p.U[g])
		tensor.AddInPlace(raw[g], uh)
		tensor.AddRowVector(raw[g], raw[g], p.B[g])
	}
	ws.Put(uh)

	// FW-EW: activations consume the raw gates, which free-on-consume.
	f := tensor.Sigmoid(ws.Get(batch, p.Hidden), raw[GateF])
	ws.Put(raw[GateF])
	i := tensor.Sigmoid(ws.Get(batch, p.Hidden), raw[GateI])
	ws.Put(raw[GateI])
	cg := tensor.Tanh(ws.Get(batch, p.Hidden), raw[GateC])
	ws.Put(raw[GateC])
	o := tensor.Sigmoid(ws.Get(batch, p.Hidden), raw[GateO])
	ws.Put(raw[GateO])

	s = ws.Get(batch, p.Hidden)
	for k := range s.Data {
		s.Data[k] = f.Data[k]*sPrev.Data[k] + i.Data[k]*cg.Data[k]
	}
	h = ws.Get(batch, p.Hidden)
	for k := range h.Data {
		h.Data[k] = o.Data[k] * tensor.Tanh32(s.Data[k])
	}

	cache = getFWCache(ws)
	*cache = FWCache{X: x, HPrev: hPrev, SPrev: sPrev, F: f, I: i, C: cg, O: o, S: s}
	sp.End()
	return h, s, cache
}

// InferenceForward runs the FW cell without retaining any cache — the
// inference flow the paper contrasts against training, and the flow
// MS2 uses for FW cells whose BP cell is predicted insignificant. The
// gate intermediates are released back to ws immediately; only h and s
// (which the caller owns) survive.
func InferenceForward(ws *tensor.Workspace, p *Params, x, hPrev, sPrev *tensor.Matrix) (h, s *tensor.Matrix) {
	h, s, cache := Forward(ws, p, x, hPrev, sPrev)
	cache.S = nil // s escapes to the caller; don't recycle it
	cache.Release(ws)
	return h, s
}

// BPInput carries the gradients flowing into a BP cell: δY_t from the
// layer above (or the loss), δH_t from the next timestamp's BP cell and
// δS_t, the cell-state gradient from the next timestamp. The cell only
// reads them; the caller keeps ownership.
type BPInput struct {
	DY *tensor.Matrix // batch×hidden, may be nil (no output gradient)
	DH *tensor.Matrix // batch×hidden, may be nil (last timestamp)
	DS *tensor.Matrix // batch×hidden, may be nil (last timestamp)
}

// BPOutput carries the gradients a BP cell produces for its neighbours.
// All three matrices are drawn from the cell's workspace and owned by
// the caller, who returns them once consumed.
type BPOutput struct {
	DX     *tensor.Matrix // batch×input, gradient for the layer below
	DHPrev *tensor.Matrix // batch×hidden, context gradient for t-1
	DSPrev *tensor.Matrix // batch×hidden, cell-state gradient for t-1
}

// Backward runs one baseline BP cell (paper Fig. 2b): BP-EW on the
// cached FW intermediates followed by BP-MatMul, accumulating weight
// gradients into grads (Eq. 3) and returning the propagated gradients
// (Eq. 2). Internal scratch is drawn from ws and released before
// returning; the cache is left intact (the caller Releases it when the
// cell is consumed for good).
func Backward(ws *tensor.Workspace, p *Params, grads *Grads, cache *FWCache, in BPInput) BPOutput {
	// The baseline flow interleaves the P1 and P2 parts of BP-EW in one
	// loop, so its whole element-wise stage records as BP-EW-P2; only
	// the reordered flow separates a BP-EW-P1 phase (ComputeP1).
	span := ws.Recorder().Begin(obs.PhaseBPEWP2)
	batch := cache.F.Rows
	hidden := p.Hidden

	// Total gradient on h_t: δY_t (from above) + δH_t (from t+1).
	dh := ws.Get(batch, hidden)
	if in.DY != nil {
		tensor.AddInPlace(dh, in.DY)
	}
	if in.DH != nil {
		tensor.AddInPlace(dh, in.DH)
	}

	// BP-EW: gate gradients. These expressions interleave the P1 parts
	// (functions of FW intermediates only) with the P2 parts (products
	// with gradients); BackwardFromP1 performs the same math with P1
	// precomputed.
	var dGate [NumGates]*tensor.Matrix
	for g := Gate(0); g < NumGates; g++ {
		dGate[g] = ws.Get(batch, hidden)
	}
	dsPrev := ws.Get(batch, hidden)

	for k := 0; k < batch*hidden; k++ {
		f := cache.F.Data[k]
		i := cache.I.Data[k]
		c := cache.C.Data[k]
		o := cache.O.Data[k]
		s := cache.S.Data[k]
		sp := cache.SPrev.Data[k]
		ts := tensor.Tanh32(s)

		dhk := dh.Data[k]
		ds := dhk * o * (1 - ts*ts)
		if in.DS != nil {
			ds += in.DS.Data[k]
		}

		dGate[GateO].Data[k] = dhk * ts * o * (1 - o)
		dGate[GateF].Data[k] = ds * sp * f * (1 - f)
		dGate[GateI].Data[k] = ds * c * i * (1 - i)
		dGate[GateC].Data[k] = ds * i * (1 - c*c)
		dsPrev.Data[k] = ds * f
	}
	ws.Put(dh)
	span.End()

	out := matmulBackward(ws, p, grads, cache.X, cache.HPrev, &dGate, dsPrev)
	ws.PutAll(dGate[:]...)
	return out
}

// matmulBackward performs the BP-MatMul stage shared by the baseline
// and reordered flows: input/context gradients (Eq. 2) and weight
// gradient accumulation (Eq. 3). dGate stays owned by the caller;
// dsPrev's ownership passes through to the returned BPOutput.
func matmulBackward(ws *tensor.Workspace, p *Params, grads *Grads, x, hPrev *tensor.Matrix, dGate *[NumGates]*tensor.Matrix, dsPrev *tensor.Matrix) BPOutput {
	sp := ws.Recorder().Begin(obs.PhaseBPMatMul)
	batch := dsPrev.Rows
	dx := ws.Get(batch, p.Input)
	dhPrev := ws.Get(batch, p.Hidden)
	tmpX := ws.Get(batch, p.Input)
	tmpH := ws.Get(batch, p.Hidden)
	for g := Gate(0); g < NumGates; g++ {
		// δX_t += δgate_g · W_gᵀ ; δH_{t-1} += δgate_g · U_gᵀ
		tensor.AddInPlace(dx, tensor.MatMulTransB(tmpX, dGate[g], p.W[g]))
		tensor.AddInPlace(dhPrev, tensor.MatMulTransB(tmpH, dGate[g], p.U[g]))
		if grads != nil {
			// δW_g += x_tᵀ ⊗ δgate_g ; δU_g += h_{t-1}ᵀ ⊗ δgate_g
			tensor.AddMatMulTransA(grads.W[g], x, dGate[g])
			tensor.AddMatMulTransA(grads.U[g], hPrev, dGate[g])
			tensor.SumRows(grads.B[g], dGate[g])
		}
	}
	ws.Put(tmpX)
	ws.Put(tmpH)
	sp.End()
	return BPOutput{DX: dx, DHPrev: dhPrev, DSPrev: dsPrev}
}

// RecomputeForward re-runs the FW cell math from stored activations to
// rebuild the intermediates — the "recompute from scratch" extreme the
// paper dismisses as impractical (Sec. III-C). It exists so the ablation
// benches can quantify exactly how much BP latency full recomputation
// adds compared with MS1's reordering. The rebuilt h is released
// immediately (only the cache matters to the BP cell that follows).
func RecomputeForward(ws *tensor.Workspace, p *Params, x, hPrev, sPrev *tensor.Matrix) *FWCache {
	h, _, cache := Forward(ws, p, x, hPrev, sPrev)
	ws.Put(h)
	return cache
}
