package lstm

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"etalstm/internal/obs"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

// sparseCell bundles one randomly initialized cell plus inputs for the
// sparse-vs-dense comparisons.
type sparseCell struct {
	p          *Params
	x, h0, s0  *tensor.Matrix
	dy, dh, ds *tensor.Matrix
}

func newSparseCell(seed uint64, input, hidden, batch int) *sparseCell {
	r := rng.New(seed)
	c := &sparseCell{p: NewParams(input, hidden)}
	c.p.Init(r)
	c.x = tensor.New(batch, input)
	c.h0 = tensor.New(batch, hidden)
	c.s0 = tensor.New(batch, hidden)
	c.dy = tensor.New(batch, hidden)
	c.dh = tensor.New(batch, hidden)
	c.ds = tensor.New(batch, hidden)
	c.x.RandInit(r, 1)
	c.h0.RandInit(r, 0.5)
	c.s0.RandInit(r, 0.5)
	c.dy.RandInit(r, 1)
	c.dh.RandInit(r, 0.5)
	c.ds.RandInit(r, 0.5)
	return c
}

// pruneP1 zeroes |v| < th in place (the MS1 approximation) and returns
// the pruned fraction.
func pruneP1(p1 *P1, th float32) float64 {
	var total, pruned int
	for _, m := range p1.Matrices() {
		for i, v := range m.Data {
			total++
			if v < th && v > -th {
				if v != 0 {
					m.Data[i] = 0
				}
				pruned++
			}
		}
	}
	return float64(pruned) / float64(total)
}

// requireBitwise fails unless a and b are bitwise identical up to the
// sign of exact zeros (ULP distance 0, matching the check harness's
// strictest tolerance).
func requireBitwise(t *testing.T, label string, a, b *tensor.Matrix) {
	t.Helper()
	if d := tensor.MaxULPDiff(a, b); d != 0 {
		t.Errorf("%s: max ULP distance %d, want bitwise", label, d)
	}
}

func requireGradsBitwise(t *testing.T, a, b *Grads) {
	t.Helper()
	for g := Gate(0); g < NumGates; g++ {
		requireBitwise(t, "δW["+g.String()+"]", a.W[g], b.W[g])
		requireBitwise(t, "δU["+g.String()+"]", a.U[g], b.U[g])
		for j := range a.B[g] {
			if tensor.ULPDiff32(a.B[g][j], b.B[g][j]) != 0 {
				t.Errorf("δB[%s][%d]: %v vs %v", g, j, a.B[g][j], b.B[g][j])
			}
		}
	}
}

// runBoth runs the dense and sparse BP kernels on the same (possibly
// pruned) P1 set and asserts every output bitwise identical.
func runBoth(t *testing.T, c *sparseCell, th float32, topK int, in BPInput) {
	t.Helper()
	ws := tensor.NewWorkspace()
	h, s, p1 := ForwardWithP1(ws, c.p, c.x, c.h0, c.s0)
	if th > 0 {
		pruneP1(p1, th)
	}
	dGrads := NewGrads(c.p)
	sGrads := NewGrads(c.p)
	dOut := BackwardFromP1(ws, c.p, dGrads, c.x, c.h0, p1, in)
	sOut := BackwardFromP1Sparse(ws, c.p, sGrads, c.x, c.h0, p1, in, topK)
	requireBitwise(t, "δX", dOut.DX, sOut.DX)
	requireBitwise(t, "δH_{t-1}", dOut.DHPrev, sOut.DHPrev)
	requireBitwise(t, "δS_{t-1}", dOut.DSPrev, sOut.DSPrev)
	requireGradsBitwise(t, dGrads, sGrads)
	ws.PutAll(h, s, dOut.DX, dOut.DHPrev, dOut.DSPrev, sOut.DX, sOut.DHPrev, sOut.DSPrev)
	p1.Release(ws)
}

// The sparse kernels must be bitwise identical to the dense P1 path on
// an unpruned set (threshold 0: nothing skipped except exact zeros)
// and on sets pruned at every threshold the harness sweeps — the
// skipped terms are exact zeros in the dense kernel either way.
func TestSparseBackwardBitwise(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	c := newSparseCell(11, 12, 20, 5)
	full := BPInput{DY: c.dy, DH: c.dh, DS: c.ds}
	for _, th := range []float32{0, 0.05, 0.1, 0.3, 0.9} {
		runBoth(t, c, th, 0, full)
	}
	// Boundary BPInput shapes: last timestamp (no DH/DS), inner layers
	// (no DY).
	runBoth(t, c, 0.1, 0, BPInput{DY: c.dy})
	runBoth(t, c, 0.1, 0, BPInput{DH: c.dh, DS: c.ds})
}

// Parallel kernel dispatch must not change the sparse path's results
// (the sparse kernels are serial per cell; the dense comparison baseline
// may shard rows — results are identical either way).
func TestSparseBackwardBitwiseParallelWorkers(t *testing.T) {
	prev := tensor.SetWorkers(4)
	defer tensor.SetWorkers(prev)
	c := newSparseCell(13, 24, 48, 8)
	runBoth(t, c, 0.1, 0, BPInput{DY: c.dy, DH: c.dh, DS: c.ds})
}

// k = rowlen (and anything ≥ hidden) makes the top-k weight-gradient
// sparsifier the identity, bitwise.
func TestSparseTopKRowLenIdentity(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	c := newSparseCell(17, 10, 16, 4)
	for _, th := range []float32{0, 0.1} {
		runBoth(t, c, th, 16, BPInput{DY: c.dy, DH: c.dh, DS: c.ds}) // k == hidden
		runBoth(t, c, th, 999, BPInput{DY: c.dy, DH: c.dh, DS: c.ds})
	}
}

// With 0 < k < rowlen the weight gradients diverge from dense (that is
// the approximation), but the propagated gradients must stay bitwise —
// top-k only applies to the weight-gradient side.
func TestSparseTopKPropagatedGradientsExact(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	c := newSparseCell(19, 12, 20, 5)
	ws := tensor.NewWorkspace()
	h, s, p1 := ForwardWithP1(ws, c.p, c.x, c.h0, c.s0)
	pruneP1(p1, 0.05)
	in := BPInput{DY: c.dy, DH: c.dh, DS: c.ds}
	dGrads, sGrads := NewGrads(c.p), NewGrads(c.p)
	dOut := BackwardFromP1(ws, c.p, dGrads, c.x, c.h0, p1, in)
	sOut := BackwardFromP1Sparse(ws, c.p, sGrads, c.x, c.h0, p1, in, 4)
	requireBitwise(t, "δX", dOut.DX, sOut.DX)
	requireBitwise(t, "δH_{t-1}", dOut.DHPrev, sOut.DHPrev)
	requireBitwise(t, "δS_{t-1}", dOut.DSPrev, sOut.DSPrev)
	// And the weight gradients must actually differ — k=4 of 20 columns
	// drops real mass; if they match, the sparsifier silently never ran.
	diff := false
	for g := Gate(0); g < NumGates && !diff; g++ {
		diff = tensor.MaxULPDiff(dGrads.W[g], sGrads.W[g]) != 0
	}
	if !diff {
		t.Error("top-k with k << rowlen left every weight gradient identical — the sparsifier is disconnected")
	}
	ws.PutAll(h, s, dOut.DX, dOut.DHPrev, dOut.DSPrev, sOut.DX, sOut.DHPrev, sOut.DSPrev)
	p1.Release(ws)
}

// The kernels must degrade gracefully without a workspace (every Get
// becomes a plain allocation).
func TestSparseBackwardNilWorkspace(t *testing.T) {
	c := newSparseCell(23, 8, 12, 3)
	h, s, p1 := ForwardWithP1(nil, c.p, c.x, c.h0, c.s0)
	pruneP1(p1, 0.1)
	grads := NewGrads(c.p)
	out := BackwardFromP1Sparse(nil, c.p, grads, c.x, c.h0, p1, BPInput{DY: c.dy}, 3)
	if out.DX == nil || out.DHPrev == nil || out.DSPrev == nil {
		t.Fatal("nil-workspace sparse backward returned nil gradients")
	}
	_ = h
	_ = s
}

// TopKFilter properties: identity at k ≥ len (same slice, not a copy),
// the kept set is exactly the k largest magnitudes (validated against a
// sort-based reference), ascending index order, and deterministic
// lowest-index tie-breaking.
func TestTopKFilterProperties(t *testing.T) {
	sel := &TopKSelector{}
	r := rng.New(29)
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(r.Uint64()%24)
		row := make([]float32, 64)
		idx := make([]int32, 0, n)
		for len(idx) < n {
			j := int32(r.Uint64() % 64)
			dup := false
			for _, e := range idx {
				if e == j {
					dup = true
				}
			}
			if !dup {
				idx = append(idx, j)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
		for _, j := range idx {
			// Quantized values force plenty of |v| ties.
			row[j] = float32(int64(r.Uniform(-3, 3))) / 2
		}
		k := int(r.Uint64() % uint64(n+2))

		got := sel.Filter(idx, row, k)
		if k <= 0 || k >= n {
			if len(got) != n {
				t.Fatalf("k=%d of %d: expected identity, got %d entries", k, n, len(got))
			}
			continue
		}
		if len(got) != k {
			t.Fatalf("k=%d of %d: kept %d", k, n, len(got))
		}
		// Reference: stable sort by (|v| desc, index asc); keep first k.
		ref := append([]int32(nil), idx...)
		abs := func(j int32) float64 { return math.Abs(float64(row[j])) }
		sort.SliceStable(ref, func(a, b int) bool {
			if abs(ref[a]) != abs(ref[b]) {
				return abs(ref[a]) > abs(ref[b])
			}
			return ref[a] < ref[b]
		})
		want := append([]int32(nil), ref[:k]...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d of %d: kept %v, want %v (row %v idx %v)", k, n, got, want, row, idx)
			}
		}
		// Re-running the same selection must be deterministic.
		again := append([]int32(nil), sel.Filter(idx, row, k)...)
		for i := range again {
			if got[i] != again[i] {
				t.Fatal("Filter is nondeterministic across calls")
			}
		}
	}
}

// The warm sparse BP cell loop — encode + sparse BP-EW-P2 + sparse
// BP-MatMul, with and without top-k — must allocate nothing, recorder
// off or on (the PR 2 convention TestWarmCellLoopAllocs set).
func TestWarmSparseCellLoopAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	c := newSparseCell(31, 16, 16, 4)
	grads := NewGrads(c.p)
	ws := tensor.NewWorkspace()

	cycle := func(topK int) func() {
		return func() {
			h, s, p1 := ForwardWithP1(ws, c.p, c.x, c.h0, c.s0)
			pruneP1(p1, 0.1)
			out := BackwardFromP1Sparse(ws, c.p, grads, c.x, c.h0, p1, BPInput{DY: c.dy, DS: c.ds}, topK)
			ws.PutAll(h, s, out.DX, out.DHPrev, out.DSPrev)
			p1.Release(ws)
		}
	}
	plain, topk := cycle(0), cycle(8)

	plain()
	topk()
	if avg := testing.AllocsPerRun(50, plain); avg > 0 {
		t.Errorf("warm sparse BP cycle (recorder off) allocates %.2f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, topk); avg > 0 {
		t.Errorf("warm sparse+topk BP cycle (recorder off) allocates %.2f times, want 0", avg)
	}

	ws.SetRecorder(obs.NewRecorder())
	defer ws.SetRecorder(nil)
	plain()
	topk()
	if avg := testing.AllocsPerRun(50, plain); avg > 0 {
		t.Errorf("warm sparse BP cycle (recorder on) allocates %.2f times, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, topk); avg > 0 {
		t.Errorf("warm sparse+topk BP cycle (recorder on) allocates %.2f times, want 0", avg)
	}
	rec := ws.Recorder()
	if rec.Observed(obs.PhaseBPEWP1) == 0 || rec.Observed(obs.PhaseBPEWP2) == 0 || rec.Observed(obs.PhaseBPMatMul) == 0 {
		t.Error("sparse cycles recorded no spans — instrumentation is disconnected")
	}
}

// phaseTotal sums the recorded wall time of the named phases.
func phaseTotal(rec *obs.Recorder, names ...string) time.Duration {
	var tot time.Duration
	for _, st := range rec.Breakdown() {
		for _, n := range names {
			if st.Phase == n {
				tot += st.Total
			}
		}
	}
	return tot
}

// The acceptance criterion behind the -sparse flag: at the default MS1
// threshold, the sparse kernels' BP-EW-P2 + BP-MatMul span time must
// drop by at least half the measured prune ratio versus the dense P1
// kernels on the same pruned sets. Timing-based, so it retries a few
// times before declaring failure.
func TestSparseBackwardPhaseSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	const input, hidden, batch, iters = 96, 160, 32, 12
	c := newSparseCell(37, input, hidden, batch)
	in := BPInput{DY: c.dy, DH: c.dh, DS: c.ds}
	grads := NewGrads(c.p)
	ws := tensor.NewWorkspace()

	run := func(sparse bool) (time.Duration, float64) {
		rec := obs.NewRecorder()
		ws.SetRecorder(rec)
		defer ws.SetRecorder(nil)
		var prune float64
		for it := 0; it < iters; it++ {
			h, s, p1 := ForwardWithP1(ws, c.p, c.x, c.h0, c.s0)
			prune = pruneP1(p1, 0.1)
			var out BPOutput
			if sparse {
				out = BackwardFromP1Sparse(ws, c.p, grads, c.x, c.h0, p1, in, 0)
			} else {
				out = BackwardFromP1(ws, c.p, grads, c.x, c.h0, p1, in)
			}
			ws.PutAll(h, s, out.DX, out.DHPrev, out.DSPrev)
			p1.Release(ws)
		}
		return phaseTotal(rec, obs.PhaseBPEWP2.String(), obs.PhaseBPMatMul.String()), prune
	}

	var lastMsg string
	for attempt := 0; attempt < 3; attempt++ {
		run(false) // warm both paths before measuring
		run(true)
		dense, prune := run(false)
		sparseT, _ := run(true)
		if prune < 0.3 {
			t.Fatalf("prune ratio %.2f too low for the speedup contract to be meaningful", prune)
		}
		limit := time.Duration(float64(dense) * (1 - 0.5*prune))
		if sparseT <= limit {
			return
		}
		lastMsg = fmt.Sprintf("%v > %v (dense %v, prune ratio %.2f)", sparseT, limit, dense, prune)
	}
	t.Errorf("sparse BP-EW-P2+BP-MatMul span time did not drop by ≥ 0.5×prune ratio: %s", lastMsg)
}

// BenchmarkWarmSparseCellCycle is the sparse counterpart of
// BenchmarkWarmCellCycle: the warm reordered FW + pruned sparse BP
// cycle, reporting allocs (which must be 0 in the steady state).
func BenchmarkWarmSparseCellCycle(b *testing.B) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	c := newSparseCell(31, 16, 16, 4)
	grads := NewGrads(c.p)
	ws := tensor.NewWorkspace()
	for _, bc := range []struct {
		name string
		topK int
	}{
		{"sparse", 0},
		{"sparse-topk8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cycle := func() {
				h, s, p1 := ForwardWithP1(ws, c.p, c.x, c.h0, c.s0)
				pruneP1(p1, 0.1)
				out := BackwardFromP1Sparse(ws, c.p, grads, c.x, c.h0, p1, BPInput{DY: c.dy, DS: c.ds}, bc.topK)
				ws.PutAll(h, s, out.DX, out.DHPrev, out.DSPrev)
				p1.Release(ws)
			}
			cycle() // warm the free lists outside the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle()
			}
		})
	}
}
