package lstm

import (
	"testing"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func benchSetup(hidden, batch int) (*Params, *tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
	r := rng.New(1)
	p := NewParams(hidden, hidden)
	p.Init(r)
	x := tensor.New(batch, hidden)
	h := tensor.New(batch, hidden)
	s := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	return p, x, h, s
}

func BenchmarkForwardH256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hOut, _, cache := Forward(ws, p, x, h, s)
		ws.Put(hOut)
		cache.Release(ws)
	}
}

func BenchmarkComputeP1H256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	ws := tensor.NewWorkspace()
	_, _, cache := Forward(ws, p, x, h, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeP1(ws, cache).Release(ws)
	}
}

func BenchmarkBackwardH256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	ws := tensor.NewWorkspace()
	_, _, cache := Forward(ws, p, x, h, s)
	r := rng.New(2)
	dy := tensor.New(32, 256)
	dy.RandInit(r, 1)
	g := NewGrads(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Backward(ws, p, g, cache, BPInput{DY: dy})
		ws.PutAll(out.DX, out.DHPrev, out.DSPrev)
	}
}

func BenchmarkBackwardFromP1H256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	ws := tensor.NewWorkspace()
	hOut, sOut, p1 := ForwardWithP1(ws, p, x, h, s)
	ws.PutAll(hOut, sOut)
	r := rng.New(2)
	dy := tensor.New(32, 256)
	dy.RandInit(r, 1)
	g := NewGrads(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := BackwardFromP1(ws, p, g, x, h, p1, BPInput{DY: dy})
		ws.PutAll(out.DX, out.DHPrev, out.DSPrev)
	}
}
