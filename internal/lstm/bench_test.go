package lstm

import (
	"testing"

	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func benchSetup(hidden, batch int) (*Params, *tensor.Matrix, *tensor.Matrix, *tensor.Matrix) {
	r := rng.New(1)
	p := NewParams(hidden, hidden)
	p.Init(r)
	x := tensor.New(batch, hidden)
	h := tensor.New(batch, hidden)
	s := tensor.New(batch, hidden)
	x.RandInit(r, 1)
	return p, x, h, s
}

func BenchmarkForwardH256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(p, x, h, s)
	}
}

func BenchmarkComputeP1H256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	_, _, cache := Forward(p, x, h, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeP1(cache)
	}
}

func BenchmarkBackwardH256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	_, _, cache := Forward(p, x, h, s)
	r := rng.New(2)
	dy := tensor.New(32, 256)
	dy.RandInit(r, 1)
	g := NewGrads(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Backward(p, g, cache, BPInput{DY: dy})
	}
}

func BenchmarkBackwardFromP1H256B32(b *testing.B) {
	p, x, h, s := benchSetup(256, 32)
	_, _, p1 := ForwardWithP1(p, x, h, s)
	r := rng.New(2)
	dy := tensor.New(32, 256)
	dy.RandInit(r, 1)
	g := NewGrads(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BackwardFromP1(p, g, x, h, p1, BPInput{DY: dy})
	}
}
