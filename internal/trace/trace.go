// Package trace models the DRAM data movement of one LSTM training
// step, split into the paper's three categories (weight matrices,
// activation data, intermediate variables) — the quantities behind
// Fig. 4 (baseline characterization) and Fig. 17 (reduction under
// MS1/MS2/η-LSTM).
//
// The model counts off-chip transfers a scratchpad-based accelerator
// (or a GPU whose L2 cannot hold the working set — the large-model
// regime the paper characterizes) must perform:
//
//	Weights:        read per cell in FW (W, U); read again in BP for
//	                δX/δH (Eq. 2) and the gradient write-back.
//	Activations:    h written once per cell in FW (stored for BP); x and
//	                h_{t-1} read per cell in BP; the FW-side x read is
//	                producer-consumer with the layer below and stays
//	                on-chip, except layer 0's external input stream.
//	Intermediates:  five planes written per cell in FW; six plane reads
//	                per cell in BP (f, i, c̃, o, s and s_{t-1}).
//
// MS1 changes the intermediate traffic to compressed P1 writes+reads
// and lets BP skip weight reads for pruned gate-gradient rows. MS2
// removes the whole BP-side traffic of skipped cells and the FW-side
// stores feeding them.
package trace

import (
	"etalstm/internal/memplan"
	"etalstm/internal/model"
)

// Movement is DRAM traffic in bytes by category.
type Movement struct {
	Weights       int64
	Activations   int64
	Intermediates int64
}

// Total returns the summed traffic.
func (m Movement) Total() int64 { return m.Weights + m.Activations + m.Intermediates }

// layerWeightBytes returns the W+U bytes of layer l.
func layerWeightBytes(cfg model.Config, l int) int64 {
	in := cfg.Hidden
	if l == 0 {
		in = cfg.InputSize
	}
	return int64(4*(in*cfg.Hidden+cfg.Hidden*cfg.Hidden)) * 4
}

// Baseline returns the per-step traffic of the unoptimized flow.
func Baseline(cfg model.Config) Movement {
	var m Movement
	planeBytes := int64(cfg.Batch*cfg.Hidden) * 4
	for l := 0; l < cfg.Layers; l++ {
		w := layerWeightBytes(cfg, l)
		inBytes := planeBytes
		if l == 0 {
			inBytes = int64(cfg.Batch*cfg.InputSize) * 4
		}
		for t := 0; t < cfg.SeqLen; t++ {
			// FW: read W,U; BP: read W,U for Eq. 2 and stream the
			// gradient accumulators once per cell.
			m.Weights += 3 * w
			// FW: layer 0 streams the external input from DRAM; upper
			// layers consume the layer below's h on-chip. The h output
			// is written once (stored for BP); BP reads x and h_{t-1}.
			if l == 0 {
				m.Activations += inBytes
			}
			m.Activations += inBytes + 2*planeBytes
			// FW: write f,i,c̃,o,s. BP: read f,i,c̃,o,s,s_{t-1}.
			m.Intermediates += 11 * planeBytes
		}
	}
	return m
}

// Params carries the measured optimization inputs (shared with the
// footprint model so experiments stay consistent).
type Params = memplan.Params

// WithMS1 returns the traffic under cell-level variable reduction.
// sparsity is the P1 near-zero fraction.
func WithMS1(cfg model.Config, sparsity float64) Movement {
	base := Baseline(cfg)
	m := base

	// Intermediates: FW writes six compressed planes, BP reads them
	// back. Compressed plane traffic = dense × (1-sparsity) × 6/4
	// (value+index pair per survivor), over 12 plane-transfers versus
	// the baseline's 11.
	pairRatio := (1 - sparsity) * 6.0 / 4.0
	m.Intermediates = int64(float64(base.Intermediates) / 11.0 * 12.0 * pairRatio)

	// Weights: of the 3 weight transfers per cell, 2 belong to BP; the
	// pruned gate-gradient rows let the decoder skip the matching
	// weight rows of the BP-MatMul reads (paper Fig. 14: the index
	// queue drives sparse operand fetch).
	bpShare := 2.0 / 3.0
	m.Weights = int64(float64(base.Weights) * (1 - bpShare*sparsity))
	return m
}

// WithMS2 returns the traffic under BP-cell skipping. skipFrac is the
// fraction of cells skipped.
func WithMS2(cfg model.Config, skipFrac float64) Movement {
	base := Baseline(cfg)
	live := 1 - skipFrac
	var m Movement
	// Weights: FW still reads W,U for every cell (1/3 of baseline);
	// the BP 2/3 only for executed cells.
	m.Weights = int64(float64(base.Weights) * (1.0/3.0 + 2.0/3.0*live))
	// Activations: layer 0's FW input stream is unconditional; the
	// BP-feeding stores/reads (h write, x and h_{t-1} reads) only
	// happen for executed cells.
	fixed := int64(cfg.SeqLen*cfg.Batch*cfg.InputSize) * 4
	m.Activations = fixed + int64(float64(base.Activations-fixed)*live)
	// Intermediates: skipped cells neither store nor load.
	m.Intermediates = int64(float64(base.Intermediates) * live)
	return m
}

// Combined returns the traffic under MS1+MS2 (the η-LSTM software
// level): MS1's compression applies to the cells MS2 still executes.
func Combined(cfg model.Config, sparsity, skipFrac float64) Movement {
	ms1 := WithMS1(cfg, sparsity)
	live := 1 - skipFrac
	var m Movement
	fwWeightShare := 1.0 / 3.0
	bpWeightFactor := float64(ms1.Weights)/float64(Baseline(cfg).Weights) - fwWeightShare
	m.Weights = int64(float64(Baseline(cfg).Weights) * (fwWeightShare + bpWeightFactor*live))
	m.Activations = WithMS2(cfg, skipFrac).Activations
	m.Intermediates = int64(float64(ms1.Intermediates) * live)
	return m
}

// Reduction returns per-category 1 − optimized/baseline fractions (the
// Fig. 17 metric).
type Reduction struct {
	Weights       float64
	Activations   float64
	Intermediates float64
}

// ReductionVs computes the reduction of opt against base.
func ReductionVs(base, opt Movement) Reduction {
	frac := func(b, o int64) float64 {
		if b == 0 {
			return 0
		}
		return 1 - float64(o)/float64(b)
	}
	return Reduction{
		Weights:       frac(base.Weights, opt.Weights),
		Activations:   frac(base.Activations, opt.Activations),
		Intermediates: frac(base.Intermediates, opt.Intermediates),
	}
}
