package trace

import (
	"testing"

	"etalstm/internal/model"
	"etalstm/internal/workload"
)

func ptbCfg() model.Config {
	return model.Config{InputSize: 512, Hidden: 1024, Layers: 3, SeqLen: 35,
		Batch: 128, OutSize: 1000, Loss: model.PerTimestampLoss}
}

func TestBaselinePositive(t *testing.T) {
	m := Baseline(ptbCfg())
	if m.Weights <= 0 || m.Activations <= 0 || m.Intermediates <= 0 {
		t.Fatalf("baseline movement: %+v", m)
	}
	if m.Total() != m.Weights+m.Activations+m.Intermediates {
		t.Fatal("Total")
	}
}

// TestIntermediateVsActivationRatio reproduces the Fig. 4 headline: the
// intermediate-variable data movement exceeds the activation movement
// by roughly 4× (paper: avg 4.34×, up to 4.81×) across the Fig. 3
// configurations.
func TestIntermediateVsActivationRatio(t *testing.T) {
	var sum float64
	sweeps := workload.AllFig3Sweeps()
	for _, sc := range sweeps {
		m := Baseline(sc.Cfg)
		ratio := float64(m.Intermediates) / float64(m.Activations)
		if ratio < 2 || ratio > 6 {
			t.Errorf("%s: interm/act ratio %.2f outside the Fig. 4 regime", sc.Label, ratio)
		}
		sum += ratio
	}
	avg := sum / float64(len(sweeps))
	if avg < 2.2 || avg > 5.5 {
		t.Fatalf("average interm/act ratio %.2f, paper reports ~4.3", avg)
	}
}

// TestIntermediateGrowsFasterThanActivations: the Sec. III-B claim that
// intermediate traffic outgrows activation traffic with model size.
func TestIntermediateGrowsFasterThanActivations(t *testing.T) {
	sweep := workload.Fig3LengthSweep()
	first := Baseline(sweep[0].Cfg)
	last := Baseline(sweep[len(sweep)-1].Cfg)
	growthI := float64(last.Intermediates) / float64(first.Intermediates)
	growthA := float64(last.Activations) / float64(first.Activations)
	if growthI < growthA {
		t.Fatalf("intermediates grew %vx, activations %vx", growthI, growthA)
	}
}

func TestMS1Reductions(t *testing.T) {
	cfg := ptbCfg()
	base := Baseline(cfg)
	ms1 := WithMS1(cfg, 0.65)
	r := ReductionVs(base, ms1)
	// Paper Fig. 17: MS1 reduces weights ~31.79 % and intermediates
	// ~60.27 %, and does not touch activations.
	if r.Weights < 0.2 || r.Weights > 0.55 {
		t.Errorf("MS1 weight reduction %.3f, paper ~0.32", r.Weights)
	}
	if r.Intermediates < 0.3 || r.Intermediates > 0.75 {
		t.Errorf("MS1 intermediate reduction %.3f, paper ~0.60", r.Intermediates)
	}
	if r.Activations != 0 {
		t.Errorf("MS1 must not change activation movement, got %.3f", r.Activations)
	}
}

func TestMS2Reductions(t *testing.T) {
	cfg := ptbCfg()
	base := Baseline(cfg)
	ms2 := WithMS2(cfg, 0.5)
	r := ReductionVs(base, ms2)
	// Paper Fig. 17: MS2 reduces weights ~24.67 %, activations ~32.89 %,
	// intermediates ~49.34 %.
	if r.Weights < 0.15 || r.Weights > 0.45 {
		t.Errorf("MS2 weight reduction %.3f, paper ~0.25", r.Weights)
	}
	if r.Activations < 0.2 || r.Activations > 0.5 {
		t.Errorf("MS2 activation reduction %.3f, paper ~0.33", r.Activations)
	}
	if r.Intermediates < 0.35 || r.Intermediates > 0.65 {
		t.Errorf("MS2 intermediate reduction %.3f, paper ~0.49", r.Intermediates)
	}
}

func TestMS2ZeroSkipIsBaseline(t *testing.T) {
	cfg := ptbCfg()
	if WithMS2(cfg, 0) != Baseline(cfg) {
		t.Fatal("zero skip fraction must equal baseline")
	}
}

func TestCombinedBeatsBoth(t *testing.T) {
	cfg := ptbCfg()
	base := Baseline(cfg)
	comb := Combined(cfg, 0.65, 0.5)
	ms1 := WithMS1(cfg, 0.65)
	ms2 := WithMS2(cfg, 0.5)
	if comb.Total() >= ms1.Total() || comb.Total() >= ms2.Total() {
		t.Fatalf("combined %d must beat MS1 %d and MS2 %d",
			comb.Total(), ms1.Total(), ms2.Total())
	}
	r := ReductionVs(base, comb)
	// Paper Fig. 17 overall: weights −40.85 %, activations −32.89 %,
	// intermediates −80.04 %.
	if r.Weights < 0.3 || r.Weights > 0.6 {
		t.Errorf("combined weight reduction %.3f, paper ~0.41", r.Weights)
	}
	if r.Intermediates < 0.6 || r.Intermediates > 0.92 {
		t.Errorf("combined intermediate reduction %.3f, paper ~0.80", r.Intermediates)
	}
	if r.Activations < 0.2 || r.Activations > 0.5 {
		t.Errorf("combined activation reduction %.3f, paper ~0.33", r.Activations)
	}
}

func TestReductionVsZeroBase(t *testing.T) {
	r := ReductionVs(Movement{}, Movement{})
	if r.Weights != 0 || r.Activations != 0 || r.Intermediates != 0 {
		t.Fatal("zero baseline must give zero reductions")
	}
}

func TestSuiteWideCombinedBands(t *testing.T) {
	// Across the six Table I benchmarks with per-benchmark skip
	// fractions, the combined reductions must stay in plausible bands.
	for _, b := range workload.Suite() {
		skip := 0.35
		if b.Cfg.SeqLen >= 100 {
			skip = 0.6
		}
		r := ReductionVs(Baseline(b.Cfg), Combined(b.Cfg, 0.65, skip))
		if r.Intermediates < 0.5 || r.Intermediates > 0.95 {
			t.Errorf("%s: intermediate reduction %.3f", b.Name, r.Intermediates)
		}
		if r.Weights <= 0 || r.Weights >= 0.7 {
			t.Errorf("%s: weight reduction %.3f", b.Name, r.Weights)
		}
	}
}
