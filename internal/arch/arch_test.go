package arch

import (
	"testing"

	"etalstm/internal/gpu"
	"etalstm/internal/model"
	"etalstm/internal/stats"
	"etalstm/internal/workload"
)

func compareAll(t *testing.T) map[string][]Comparison {
	t.Helper()
	hw := Paper()
	dev := gpu.V100()
	out := make(map[string][]Comparison)
	for _, b := range workload.Suite() {
		out[b.Name] = Compare(b.Cfg, hw, dev, DefaultOptParams(b.Cfg))
	}
	return out
}

func collect(all map[string][]Comparison, sc Scenario, f func(Comparison) float64) []float64 {
	var out []float64
	for _, cs := range all {
		out = append(out, f(cs[sc]))
	}
	return out
}

func TestBaselineIsUnity(t *testing.T) {
	for name, cs := range compareAll(t) {
		b := cs[Baseline]
		if b.Speedup != 1 || b.NormalizedEnergy != 1 {
			t.Errorf("%s: baseline must normalize to 1: %+v", name, b)
		}
	}
}

// TestFig15aMS1Band: MS1 speedup avg ~1.21×, never above the paper's
// 1.35× max by a wide margin, never below 1.
func TestFig15aMS1Band(t *testing.T) {
	all := compareAll(t)
	sp := collect(all, MS1, func(c Comparison) float64 { return c.Speedup })
	avg := stats.Mean(sp)
	if avg < 1.1 || avg > 1.4 {
		t.Fatalf("MS1 avg speedup %.3f, paper 1.21", avg)
	}
	for name, cs := range all {
		if s := cs[MS1].Speedup; s < 1.0 || s > 1.5 {
			t.Errorf("%s: MS1 speedup %.3f out of band", name, s)
		}
	}
}

// TestFig15aMS2Band: MS2 avg ~1.32×, larger on longer layer lengths.
func TestFig15aMS2Band(t *testing.T) {
	all := compareAll(t)
	avg := stats.Mean(collect(all, MS2, func(c Comparison) float64 { return c.Speedup }))
	if avg < 1.1 || avg > 1.5 {
		t.Fatalf("MS2 avg speedup %.3f, paper 1.32", avg)
	}
	// The paper: "MS2 is more effective for the LSTM training with
	// larger layer length" — BABI (303) must beat PTB (35).
	if all["BABI"][MS2].Speedup <= all["PTB"][MS2].Speedup {
		t.Fatal("MS2 must help long layer lengths more")
	}
	// And MS1 is more effective for larger hidden sizes than MS2 there:
	// TREC-10 (H3072, LL18) gains more from MS1 than MS2.
	if all["TREC-10"][MS1].Speedup <= all["TREC-10"][MS2].Speedup {
		t.Fatal("MS1 must dominate on the large-hidden short-length benchmark")
	}
}

// TestFig15aCombineBand: Combine-MS avg ~1.56× (≤ ~1.79 in the paper;
// our band allows up to 2.1 on the longest benchmarks).
func TestFig15aCombineBand(t *testing.T) {
	all := compareAll(t)
	sp := collect(all, CombineMS, func(c Comparison) float64 { return c.Speedup })
	avg := stats.Mean(sp)
	if avg < 1.3 || avg > 1.9 {
		t.Fatalf("Combine-MS avg speedup %.3f, paper 1.56", avg)
	}
	for name, cs := range all {
		comb := cs[CombineMS].Speedup
		if comb+1e-9 < cs[MS1].Speedup || comb+1e-9 < cs[MS2].Speedup {
			t.Errorf("%s: combining must not lose to either part", name)
		}
	}
}

// TestFig15aLSTMInfSlower: the inference-accelerator design must trail
// the GPU baseline (paper: −27.52 % average).
func TestFig15aLSTMInfSlower(t *testing.T) {
	all := compareAll(t)
	for name, cs := range all {
		if s := cs[LSTMInf].Speedup; s >= 1 {
			t.Errorf("%s: LSTM-Inf speedup %.3f must be < 1", name, s)
		}
		if e := cs[LSTMInf].NormalizedEnergy; e <= 1 {
			t.Errorf("%s: LSTM-Inf energy %.3f must exceed baseline", name, e)
		}
	}
}

// TestFig15aStaticArchNearBaseline: Omni-PE + static allocation sits
// near the baseline on average (paper: −3.36 %).
func TestFig15aStaticArchNearBaseline(t *testing.T) {
	all := compareAll(t)
	avg := stats.Mean(collect(all, StaticArch, func(c Comparison) float64 { return c.Speedup }))
	if avg < 0.75 || avg > 1.25 {
		t.Fatalf("Static-Arch avg speedup %.3f, paper ~0.97", avg)
	}
	// Static-Arch must beat LSTM-Inf everywhere (more PEs, same policy).
	for name, cs := range all {
		if cs[StaticArch].Speedup <= cs[LSTMInf].Speedup {
			t.Errorf("%s: Static-Arch must beat LSTM-Inf", name)
		}
	}
}

// TestFig15aDynArchBand: R2A alone averages ~1.4-1.5× (paper 1.42×,
// up to 1.85×) and always beats Static-Arch.
func TestFig15aDynArchBand(t *testing.T) {
	all := compareAll(t)
	sp := collect(all, DynArch, func(c Comparison) float64 { return c.Speedup })
	avg := stats.Mean(sp)
	if avg < 1.25 || avg > 1.7 {
		t.Fatalf("Dyn-Arch avg speedup %.3f, paper 1.42", avg)
	}
	for name, cs := range all {
		if name == "TREC-10" {
			// The static split is calibrated on TREC-10, so there the
			// two designs tie to within the swing tax.
			if cs[DynArch].Speedup < cs[StaticArch].Speedup*0.95 {
				t.Errorf("TREC-10: Dyn-Arch %.3f far behind matched Static-Arch %.3f",
					cs[DynArch].Speedup, cs[StaticArch].Speedup)
			}
			continue
		}
		if cs[DynArch].Speedup <= cs[StaticArch].Speedup*0.999 {
			t.Errorf("%s: Dyn-Arch %.3f must beat Static-Arch %.3f",
				name, cs[DynArch].Speedup, cs[StaticArch].Speedup)
		}
		if cs[DynArch].Utilization <= cs[StaticArch].Utilization {
			t.Errorf("%s: R2A must raise utilization", name)
		}
	}
}

// TestFig15aEtaLSTMHeadline: the full design averages ~3-4× (paper
// 3.99×, up to 5.73×), peaks on the longest benchmark, and always wins.
func TestFig15aEtaLSTMHeadline(t *testing.T) {
	all := compareAll(t)
	sp := collect(all, EtaLSTM, func(c Comparison) float64 { return c.Speedup })
	avg := stats.Mean(sp)
	if avg < 2.5 || avg > 4.5 {
		t.Fatalf("η-LSTM avg speedup %.3f, paper 3.99", avg)
	}
	best, bestName := 0.0, ""
	for name, cs := range all {
		s := cs[EtaLSTM].Speedup
		if s < 1.5 {
			t.Errorf("%s: η-LSTM speedup %.3f too low", name, s)
		}
		if s > best {
			best, bestName = s, name
		}
		// The full design must dominate every other scenario.
		for sc := Scenario(0); sc < NumScenarios; sc++ {
			if sc != EtaLSTM && cs[sc].Speedup > s {
				t.Errorf("%s: scenario %v beats η-LSTM", name, sc)
			}
		}
	}
	if best < 3.5 {
		t.Fatalf("η-LSTM max speedup %.3f, paper up to 5.73", best)
	}
	if bestName != "BABI" && bestName != "IMDB" && bestName != "WMT" {
		t.Fatalf("η-LSTM should peak on a long-sequence benchmark, got %s", bestName)
	}
}

// TestFig15bEnergyBands: normalized energy of the software rows and the
// full design (paper: Combine-MS −35.26 %, η-LSTM −63.70 %).
func TestFig15bEnergyBands(t *testing.T) {
	all := compareAll(t)
	combAvg := stats.Mean(collect(all, CombineMS, func(c Comparison) float64 { return c.NormalizedEnergy }))
	if combAvg < 0.45 || combAvg > 0.8 {
		t.Fatalf("Combine-MS avg energy %.3f, paper 0.65", combAvg)
	}
	etaAvg := stats.Mean(collect(all, EtaLSTM, func(c Comparison) float64 { return c.NormalizedEnergy }))
	if etaAvg < 0.2 || etaAvg > 0.6 {
		t.Fatalf("η-LSTM avg energy %.3f, paper 0.363", etaAvg)
	}
	for name, cs := range all {
		if cs[EtaLSTM].NormalizedEnergy >= cs[CombineMS].NormalizedEnergy {
			t.Errorf("%s: full design must use less energy than software-only", name)
		}
	}
}

// TestFig16EnergyEfficiency: Dyn-Arch's energy efficiency beats the
// baseline on every benchmark (paper avg 1.67×, up to 2.69×) while
// LSTM-Inf's never does; Static-Arch is mixed.
func TestFig16EnergyEfficiency(t *testing.T) {
	all := compareAll(t)
	var staticWins int
	for name, cs := range all {
		if g := cs[DynArch].EnergyEffGain; g <= 1 {
			t.Errorf("%s: Dyn-Arch energy efficiency %.3f must beat baseline", name, g)
		}
		if g := cs[LSTMInf].EnergyEffGain; g >= 1 {
			t.Errorf("%s: LSTM-Inf energy efficiency %.3f must trail baseline", name, g)
		}
		if cs[StaticArch].EnergyEffGain > 1 {
			staticWins++
		}
		_ = name
	}
	if staticWins == 0 || staticWins == len(all) {
		t.Errorf("Static-Arch energy efficiency should be mixed across benchmarks, wins=%d", staticWins)
	}
	avg := stats.Mean(collect(all, DynArch, func(c Comparison) float64 { return c.EnergyEffGain }))
	if avg < 1.1 || avg > 2.4 {
		t.Fatalf("Dyn-Arch avg energy-efficiency gain %.3f, paper 1.67", avg)
	}
}

func TestSkipFracFollowsGeometry(t *testing.T) {
	babi, _ := workload.ByName("BABI")
	trec, _ := workload.ByName("TREC-10")
	if SkipFracFor(babi.Cfg) <= SkipFracFor(trec.Cfg) {
		t.Fatal("longer layers must admit more skipping")
	}
	if f := SkipFracFor(babi.Cfg); f > 0.51 {
		t.Fatalf("skip frac %.3f exceeds the convergence cap", f)
	}
}

func TestScenarioStrings(t *testing.T) {
	want := []string{"Baseline", "MS1", "MS2", "Combine-MS", "LSTM-Inf", "Static-Arch", "Dyn-Arch", "EtaLSTM"}
	for sc := Scenario(0); sc < NumScenarios; sc++ {
		if sc.String() != want[sc] {
			t.Fatalf("scenario %d: %s", sc, sc.String())
		}
	}
}

func TestHWConfigPEs(t *testing.T) {
	hw := Paper()
	if hw.PEs() != 4*40*32 {
		t.Fatalf("PEs: %d", hw.PEs())
	}
}

func TestEvaluateUnknownScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b, _ := workload.ByName("PTB")
	Evaluate(NumScenarios, b.Cfg, Paper(), gpu.V100(), OptParams{})
}

// TestUtilizationBounds: accelerator utilization stays in (0, 1].
func TestUtilizationBounds(t *testing.T) {
	b, _ := workload.ByName("WMT")
	for _, sc := range []Scenario{LSTMInf, StaticArch, DynArch, EtaLSTM} {
		e := Evaluate(sc, b.Cfg, Paper(), gpu.V100(), DefaultOptParams(b.Cfg))
		if e.Utilization <= 0 || e.Utilization > 1.001 {
			t.Errorf("%v: utilization %.3f", sc, e.Utilization)
		}
	}
}

// TestMoreChannelsScaleThroughput: the Sec. V-D scalability claim —
// doubling channels roughly halves compute-bound step time.
func TestMoreChannelsScaleThroughput(t *testing.T) {
	b, _ := workload.ByName("PTB")
	hw := Paper()
	small := Evaluate(DynArch, b.Cfg, hw, gpu.V100(), OptParams{})
	hw2 := hw
	hw2.ChannelsPerBoard *= 2
	big := Evaluate(DynArch, b.Cfg, hw2, gpu.V100(), OptParams{})
	ratio := small.StepSeconds / big.StepSeconds
	if ratio < 1.6 || ratio > 2.1 {
		t.Fatalf("doubling channels gave %.2fx", ratio)
	}
}

// TestBandwidthBound: starving the accelerator of HBM bandwidth must
// make the DMA the binding term — step time floors at traffic/bandwidth
// regardless of PE count (the constraint the Sec. V-D scalability
// discussion acknowledges).
func TestBandwidthBound(t *testing.T) {
	b, _ := workload.ByName("PTB")
	hw := Paper()
	hw.HBMBytesPerSec = 1e9 // 1 GB/s: absurdly starved
	starved := Evaluate(DynArch, b.Cfg, hw, gpu.V100(), OptParams{})
	hw2 := hw
	hw2.ChannelsPerBoard *= 4
	starvedWide := Evaluate(DynArch, b.Cfg, hw2, gpu.V100(), OptParams{})
	if starvedWide.StepSeconds < starved.StepSeconds*0.99 {
		t.Fatalf("bandwidth-bound step must not improve with more PEs: %v vs %v",
			starvedWide.StepSeconds, starved.StepSeconds)
	}
	healthy := Evaluate(DynArch, b.Cfg, Paper(), gpu.V100(), OptParams{})
	if starved.StepSeconds <= healthy.StepSeconds {
		t.Fatal("starving bandwidth must slow the step")
	}
}

func TestOOMPropagates(t *testing.T) {
	// A model too big for the device must flag OOM in GPU scenarios.
	cfg := model.Config{InputSize: 512, Hidden: 4096, Layers: 12, SeqLen: 100,
		Batch: 128, OutSize: 1000, Loss: model.PerTimestampLoss}
	e := Evaluate(Baseline, cfg, Paper(), gpu.RTX5000(), OptParams{})
	if !e.OOM {
		t.Fatal("expected OOM on RTX5000")
	}
}
