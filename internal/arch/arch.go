// Package arch composes the η-LSTM hardware models into the design
// scenarios the paper evaluates (Sec. VI-A "Comparison Cases") and
// produces per-training-step latency and energy for each — the numbers
// behind Fig. 15 (speedup, energy), Fig. 16 (energy efficiency) and the
// η-LSTM rows of Figs. 17/18.
//
// Scenarios:
//
//	Baseline    GPU (V100-class) training, unmodified flow
//	MS1         GPU + cell-level variable reduction (Sec. IV-A)
//	MS2         GPU + BP-cell skipping (Sec. IV-B)
//	CombineMS   GPU + both software optimizations
//	LSTMInf     accelerator built from monolithic PEs with static
//	            allocation (the LSTM-inference-accelerator style [11])
//	StaticArch  Omni-PE accelerator with static allocation (TREC-10-
//	            calibrated split)
//	DynArch     Omni-PE accelerator with R2A dynamic allocation, no
//	            software optimizations
//	EtaLSTM     DynArch + CombineMS: the full cross-stack design
package arch

import (
	"fmt"

	"etalstm/internal/gpu"
	"etalstm/internal/hw/omnipe"
	"etalstm/internal/hw/sched"
	"etalstm/internal/lstm"
	"etalstm/internal/memplan"
	"etalstm/internal/model"
	"etalstm/internal/skip"
	"etalstm/internal/trace"
	"etalstm/internal/workload"
)

// Scenario identifies one comparison case.
type Scenario int

// The eight design points of Fig. 15.
const (
	Baseline Scenario = iota
	MS1
	MS2
	CombineMS
	LSTMInf
	StaticArch
	DynArch
	EtaLSTM
	NumScenarios
)

// String implements fmt.Stringer, matching the paper's labels.
func (s Scenario) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case MS1:
		return "MS1"
	case MS2:
		return "MS2"
	case CombineMS:
		return "Combine-MS"
	case LSTMInf:
		return "LSTM-Inf"
	case StaticArch:
		return "Static-Arch"
	case DynArch:
		return "Dyn-Arch"
	case EtaLSTM:
		return "EtaLSTM"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// HWConfig describes the accelerator build (paper Sec. VI-A: four
// VCU128 boards, 40 channels each, 32 Omni-PEs per channel, 500 MHz,
// HBM capped at 224 GB/s per board).
type HWConfig struct {
	Boards           int
	ChannelsPerBoard int
	PEsPerChannel    int
	ClockHz          float64
	// MACsPerPECycle is the capability calibration: the paper equates
	// its 4-board rig with one V100's computational capability; with
	// DSP cascading each Omni-PE sustains ~1.4 MACs per cycle, which
	// reproduces the paper's measured Dyn-Arch speedups.
	MACsPerPECycle float64
	// HBMBytesPerSec is total off-chip bandwidth across boards.
	HBMBytesPerSec float64
	// StaticWattsPerBoard covers clocking, I/O and fabric leakage.
	StaticWattsPerBoard float64
}

// Paper returns the paper's accelerator configuration.
func Paper() HWConfig {
	return HWConfig{
		Boards: 4, ChannelsPerBoard: 40, PEsPerChannel: 32,
		ClockHz: 500e6, MACsPerPECycle: 1.2,
		HBMBytesPerSec:      4 * 224e9,
		StaticWattsPerBoard: 25,
	}
}

// PEs returns the total PE count.
func (h HWConfig) PEs() int { return h.Boards * h.ChannelsPerBoard * h.PEsPerChannel }

// effectivePEs folds the capability calibration into the scheduler's
// PE count.
func (h HWConfig) effectivePEs() int {
	return int(float64(h.PEs()) * h.MACsPerPECycle)
}

// Energy constants (FPGA-class, DESIGN.md §5): per-MAC and per-EW-op
// dynamic energy including fabric routing, plus memory energies from
// internal/hw/memory.
const (
	macEnergyPJ   = 32.0
	ewEnergyPJ    = 10.0
	hbmEnergyPJB  = 10.0
	sramEnergyPJB = 0.16
	// sramTrafficFactor approximates on-chip traffic as a multiple of
	// off-chip traffic (operands staged through the scratchpad).
	sramTrafficFactor = 3.0
)

// gpuSparseEfficiency is how much of the P1 sparsity a GPU can convert
// into skipped MatMul work (GPUs exploit fine-grained sparsity poorly;
// the custom decoder exploits it fully).
const gpuSparseEfficiency = 0.3

// OptParams carries the measured software-optimization inputs.
type OptParams struct {
	// P1Sparsity is the near-zero fraction of the P1 products
	// (Fig. 6's operating point, ~0.65).
	P1Sparsity float64
	// SkipFrac is MS2's skipped-cell fraction for this model.
	SkipFrac float64
}

// DefaultOptParams derives the operating point for a benchmark: the
// Fig. 6 sparsity plus a skip fraction from the Eq. 4 planner on the
// full model geometry.
func DefaultOptParams(cfg model.Config) OptParams {
	return OptParams{
		P1Sparsity: 0.65,
		SkipFrac:   SkipFracFor(cfg),
	}
}

// SkipFracThreshold is the Eq. 4 relative threshold the MS2 planner
// runs at for the architecture studies.
const SkipFracThreshold = 0.02

// SkipFracFor computes MS2's skipped fraction for cfg from the Eq. 4
// predictor (capped by the planner's convergence guard).
func SkipFracFor(cfg model.Config) float64 {
	pred := skip.NewPredictor(cfg.Loss, cfg.Layers, cfg.SeqLen)
	plan := skip.Build(pred, 1.0, skip.Config{Threshold: SkipFracThreshold, Base: model.StoreRaw})
	return plan.SkippedFrac()
}

// Eval is one scenario's modeled training step.
type Eval struct {
	Scenario    Scenario
	StepSeconds float64
	EnergyJ     float64
	PowerW      float64
	// Throughput is model FLOP/s (baseline FLOPs over step time, so
	// scenarios that skip work still get credit for the whole model).
	Throughput float64
	// Utilization is PE busy fraction (accelerator scenarios only).
	Utilization float64
	OOM         bool
}

// GFLOPSperW returns the energy-efficiency metric of Fig. 16.
func (e Eval) GFLOPSperW() float64 {
	if e.PowerW == 0 {
		return 0
	}
	return e.Throughput / 1e9 / e.PowerW
}

// phases builds the per-step workload under the given software flow.
// Returns (phase list, MAC count, EW count, traffic).
func phases(cfg model.Config, ms1, ms2 bool, p OptParams) ([]sched.Workload, int64, int64, trace.Movement) {
	var fw, bp lstm.OpCount
	live := 1.0
	if ms2 {
		live = 1 - p.SkipFrac
	}
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InputSize
		}
		f := lstm.ForwardOps(in, cfg.Hidden, cfg.Batch).Scale(int64(cfg.SeqLen))
		fw = fw.Add(f)
		if ms1 {
			fw = fw.Add(lstm.P1Ops(cfg.Hidden, cfg.Batch).Scale(int64(cfg.SeqLen)))
			b := lstm.BackwardFromP1Ops(in, cfg.Hidden, cfg.Batch, p.P1Sparsity)
			bp = bp.Add(scaleOps(b, float64(cfg.SeqLen)*live))
		} else {
			b := lstm.BackwardOps(in, cfg.Hidden, cfg.Batch)
			bp = bp.Add(scaleOps(b, float64(cfg.SeqLen)*live))
		}
	}

	var traffic trace.Movement
	switch {
	case ms1 && ms2:
		traffic = trace.Combined(cfg, p.P1Sparsity, p.SkipFrac)
	case ms1:
		traffic = trace.WithMS1(cfg, p.P1Sparsity)
	case ms2:
		traffic = trace.WithMS2(cfg, p.SkipFrac)
	default:
		traffic = trace.Baseline(cfg)
	}

	ph := []sched.Workload{sched.FromOpCount(fw), sched.FromOpCount(bp)}
	return ph, fw.MatMulMACs + bp.MatMulMACs, fw.EWOps() + bp.EWOps(), traffic
}

func scaleOps(o lstm.OpCount, f float64) lstm.OpCount {
	return lstm.OpCount{
		MatMulMACs: int64(float64(o.MatMulMACs) * f),
		EWMul:      int64(float64(o.EWMul) * f),
		EWAdd:      int64(float64(o.EWAdd) * f),
		Activation: int64(float64(o.Activation) * f),
	}
}

// accelerator evaluates an accelerator scenario.
func accelerator(cfg model.Config, hw HWConfig, policy sched.Policy, peScale float64, ms1, ms2 bool, p OptParams) Eval {
	ph, macs, ews, traffic := phases(cfg, ms1, ms2, p)
	totalPEs := int(float64(hw.effectivePEs()) * peScale)
	if totalPEs < 2 {
		totalPEs = 2
	}

	var alloc sched.Alloc
	if policy == sched.PolicyStatic {
		// Design-time split calibrated on the TREC-10 baseline mix
		// (paper Sec. VI-A: "the distribution is based on the TREC10
		// configuration").
		trec, err := workload.ByName("TREC-10")
		if err != nil {
			panic(err)
		}
		refPh, _, _, _ := phases(trec.Cfg, false, false, OptParams{})
		alloc = sched.StaticSplit(totalPEs, refPh[0].Add(refPh[1]))
	}

	r := sched.RunPhases(ph, policy, alloc, totalPEs)
	computeSec := float64(r.Cycles) / hw.ClockHz
	memSec := float64(traffic.Total()) / hw.HBMBytesPerSec
	stepSec := computeSec
	if memSec > stepSec {
		stepSec = memSec // DMA and compute overlap; the slower binds
	}

	dynamicJ := (float64(macs)*macEnergyPJ + float64(ews)*ewEnergyPJ +
		float64(traffic.Total())*hbmEnergyPJB +
		float64(traffic.Total())*sramTrafficFactor*sramEnergyPJB) * 1e-12
	staticJ := hw.StaticWattsPerBoard * float64(hw.Boards) * stepSec
	energy := dynamicJ + staticJ

	return Eval{
		StepSeconds: stepSec,
		EnergyJ:     energy,
		PowerW:      energy / stepSec,
		Throughput:  gpu.StepFLOPs(cfg) / stepSec,
		Utilization: r.Utilization,
	}
}

// gpuScenario evaluates a GPU-side scenario (baseline or software-
// optimized). The capacity gate here uses the analytic footprint, not
// the framework-inflated one of gpu.Step: the Fig. 3b OOM wall is a
// PyTorch-stack artifact the paper characterizes separately, and the
// paper's Fig. 15 baseline measurements do exist for every Table I
// benchmark, so the comparison harness must not refuse them.
func gpuScenario(dev gpu.Device, cfg model.Config, ms1, ms2 bool, p OptParams) Eval {
	if memplan.Footprint(cfg, memplan.Baseline, memplan.Params{}).Total() > dev.MemBytes {
		return Eval{OOM: true}
	}
	dev.MemBytes = 1 << 62 // analytic gate passed; bypass the framework gate
	if !ms1 && !ms2 {
		r := gpu.Step(dev, cfg)
		return fromGPU(r)
	}
	_, macs, ews, traffic := phases(cfg, ms1, ms2, p)
	// GPUs recover only part of the sparsity the decoder exploits
	// fully: blend the dense and sparse MAC counts.
	if ms1 {
		_, denseMacs, _, _ := phases(cfg, false, ms2, p)
		macs = int64(float64(macs)*gpuSparseEfficiency + float64(denseMacs)*(1-gpuSparseEfficiency))
	}
	flops := float64(2*macs + ews)
	intermScale := 1.0
	if ms1 {
		intermScale *= (1 - p.P1Sparsity) * 6 / 5 * 1.5 // pair bytes vs dense
	}
	if ms2 {
		intermScale *= 1 - p.SkipFrac
	}
	r := gpu.StepOptimized(dev, cfg, flops, traffic, intermScale)
	// Report throughput against the full model FLOPs so skipped work
	// counts as progress (the model still trains one step).
	if !r.OOM {
		r.Throughput = gpu.StepFLOPs(cfg) / r.StepSeconds
	}
	return fromGPU(r)
}

func fromGPU(r gpu.Result) Eval {
	return Eval{
		StepSeconds: r.StepSeconds,
		EnergyJ:     r.EnergyJ,
		PowerW:      r.PowerW,
		Throughput:  r.Throughput,
		OOM:         r.OOM,
	}
}

// lstmInfPEScale is the PE-count penalty of the monolithic PE design:
// the unified PE's fabric cost versus the Omni-PE's (Sec. V-A).
func lstmInfPEScale() float64 {
	omni := omnipe.Resources()
	unified := omnipe.UnifiedPEResources()
	// Blend LUT and FF pressure: whichever the fabric runs out of first
	// bounds the PE count; empirically the mix lands between the two.
	lut := float64(omni.LUT) / float64(unified.LUT)
	ff := float64(omni.FF) / float64(unified.FF)
	return (lut + ff) / 2
}

// Evaluate models one training step of cfg under scenario sc.
func Evaluate(sc Scenario, cfg model.Config, hw HWConfig, dev gpu.Device, p OptParams) Eval {
	var e Eval
	switch sc {
	case Baseline:
		e = gpuScenario(dev, cfg, false, false, p)
	case MS1:
		e = gpuScenario(dev, cfg, true, false, p)
	case MS2:
		e = gpuScenario(dev, cfg, false, true, p)
	case CombineMS:
		e = gpuScenario(dev, cfg, true, true, p)
	case LSTMInf:
		e = accelerator(cfg, hw, sched.PolicyStatic, lstmInfPEScale(), false, false, p)
		// The monolithic PE also burns more energy per op (Sec. V-A).
		unified, omni := omnipe.UnifiedPEResources(), omnipe.Resources()
		scale := unified.TotalPower() / omni.TotalPower()
		e.EnergyJ *= scale
		e.PowerW *= scale
	case StaticArch:
		e = accelerator(cfg, hw, sched.PolicyStatic, 1, false, false, p)
	case DynArch:
		e = accelerator(cfg, hw, sched.PolicyDynamic, 1, false, false, p)
	case EtaLSTM:
		e = accelerator(cfg, hw, sched.PolicyDynamic, 1, true, true, p)
	default:
		panic(fmt.Sprintf("arch: unknown scenario %d", sc))
	}
	e.Scenario = sc
	return e
}

// Comparison is a scenario evaluated against the baseline.
type Comparison struct {
	Eval
	Speedup          float64 // baseline step time / scenario step time
	NormalizedEnergy float64 // scenario energy / baseline energy
	EnergyEffGain    float64 // GFLOPS/W ratio over baseline (Fig. 16)
}

// Compare evaluates every scenario on cfg and normalizes against the
// GPU baseline — one benchmark's column of Figs. 15 and 16.
func Compare(cfg model.Config, hw HWConfig, dev gpu.Device, p OptParams) []Comparison {
	base := Evaluate(Baseline, cfg, hw, dev, p)
	out := make([]Comparison, 0, int(NumScenarios))
	for sc := Scenario(0); sc < NumScenarios; sc++ {
		e := Evaluate(sc, cfg, hw, dev, p)
		c := Comparison{Eval: e}
		if !e.OOM && e.StepSeconds > 0 && base.StepSeconds > 0 {
			c.Speedup = base.StepSeconds / e.StepSeconds
			c.NormalizedEnergy = e.EnergyJ / base.EnergyJ
			if base.GFLOPSperW() > 0 {
				c.EnergyEffGain = e.GFLOPSperW() / base.GFLOPSperW()
			}
		}
		out = append(out, c)
	}
	return out
}
