package persist

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func testNet(t *testing.T) *model.Network {
	t.Helper()
	cfg := model.Config{InputSize: 5, Hidden: 7, Layers: 2, SeqLen: 4,
		Batch: 3, OutSize: 6, Loss: model.PerTimestampLoss}
	net, err := model.NewNetwork(cfg, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRoundtrip(t *testing.T) {
	net := testNet(t)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != net.Cfg {
		t.Fatalf("config: %+v vs %+v", got.Cfg, net.Cfg)
	}
	for l := range net.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			if !got.Layer[l].W[g].Equal(net.Layer[l].W[g], 0) {
				t.Fatalf("W[%d][%v] not exact", l, g)
			}
			if !got.Layer[l].U[g].Equal(net.Layer[l].U[g], 0) {
				t.Fatalf("U[%d][%v] not exact", l, g)
			}
			for j := range net.Layer[l].B[g] {
				if got.Layer[l].B[g][j] != net.Layer[l].B[g][j] {
					t.Fatalf("B[%d][%v][%d] not exact", l, g, j)
				}
			}
		}
	}
	if !got.Proj.Equal(net.Proj, 0) {
		t.Fatal("projection not exact")
	}
}

func TestRoundtripPreservesForward(t *testing.T) {
	net := testNet(t)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	xs := make([]*tensor.Matrix, net.Cfg.SeqLen)
	for i := range xs {
		xs[i] = tensor.New(net.Cfg.Batch, net.Cfg.InputSize)
		xs[i].RandInit(r, 1)
	}
	a, err := net.Forward(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Forward(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := net.Cfg.Layers - 1
	if !a.H[last][net.Cfg.SeqLen-1].Equal(b.H[last][net.Cfg.SeqLen-1], 0) {
		t.Fatal("loaded network computes differently")
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xff
	// Fix the CRC so only the magic check fires.
	fixed := append([]byte{}, raw[:len(raw)-4]...)
	var out bytes.Buffer
	out.Write(fixed)
	crcOf(&out, fixed)
	_, err := Load(&out)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected magic error, got %v", err)
	}
}

func TestVersionMismatchReported(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Rewrite the version token ("v1" -> "v9") and re-seal the CRC so
	// only the version check can fire.
	payload := append([]byte{}, raw[:len(raw)-4]...)
	payload[len(magicPrefix)+1] = '9'
	var out bytes.Buffer
	out.Write(payload)
	crcOf(&out, payload)
	_, err := Load(&out)
	if err == nil {
		t.Fatal("expected version error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"v9"`) || !strings.Contains(msg, `"v1"`) {
		t.Fatalf("version error %q does not name got (v9) and want (v1)", msg)
	}
}

func TestCheckConfig(t *testing.T) {
	base := model.Config{InputSize: 5, Hidden: 7, Layers: 2, SeqLen: 4,
		Batch: 3, OutSize: 6, Loss: model.PerTimestampLoss}
	if err := CheckConfig(base, base); err != nil {
		t.Fatalf("equal configs: %v", err)
	}
	got := base
	got.Hidden = 16
	got.Loss = model.SingleLoss
	err := CheckConfig(got, base)
	if err == nil {
		t.Fatal("expected mismatch error")
	}
	msg := err.Error()
	for _, want := range []string{"Hidden 16 (want 7)", "Loss", "mismatch"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("mismatch error %q missing %q", msg, want)
		}
	}
	// Matching fields stay out of the diff.
	if strings.Contains(msg, "InputSize") {
		t.Fatalf("mismatch error %q names a matching field", msg)
	}
}

// crcOf appends the IEEE CRC of payload to out.
func crcOf(out *bytes.Buffer, payload []byte) {
	sum := crc32.ChecksumIEEE(payload)
	out.Write([]byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)})
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x01 // flip one payload bit
	_, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("expected checksum error, got %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, err := Load(bytes.NewReader(raw[:len(raw)/2]))
	if err == nil {
		t.Fatal("expected error for truncated checkpoint")
	}
	_, err = Load(bytes.NewReader(raw[:4]))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("expected truncation error, got %v", err)
	}
}

func TestTrailingGarbageDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	payload := append([]byte{}, raw[:len(raw)-4]...)
	payload = append(payload, 0xde, 0xad)
	var out bytes.Buffer
	out.Write(payload)
	crcOf(&out, payload)
	_, err := Load(&out)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("expected trailing-bytes error, got %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.etalstm")
	net := testNet(t)
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	// Atomic write: no temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != net.Cfg {
		t.Fatal("file roundtrip config mismatch")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error")
	}
}
