package persist

import (
	"bytes"
	"crypto/sha256"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
	"etalstm/internal/tensor"
)

func testNet(t *testing.T) *model.Network {
	t.Helper()
	cfg := model.Config{InputSize: 5, Hidden: 7, Layers: 2, SeqLen: 4,
		Batch: 3, OutSize: 6, Loss: model.PerTimestampLoss}
	net, err := model.NewNetwork(cfg, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRoundtrip(t *testing.T) {
	net := testNet(t)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != net.Cfg {
		t.Fatalf("config: %+v vs %+v", got.Cfg, net.Cfg)
	}
	for l := range net.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			if !got.Layer[l].W[g].Equal(net.Layer[l].W[g], 0) {
				t.Fatalf("W[%d][%v] not exact", l, g)
			}
			if !got.Layer[l].U[g].Equal(net.Layer[l].U[g], 0) {
				t.Fatalf("U[%d][%v] not exact", l, g)
			}
			for j := range net.Layer[l].B[g] {
				if got.Layer[l].B[g][j] != net.Layer[l].B[g][j] {
					t.Fatalf("B[%d][%v][%d] not exact", l, g, j)
				}
			}
		}
	}
	if !got.Proj.Equal(net.Proj, 0) {
		t.Fatal("projection not exact")
	}
}

func TestRoundtripPreservesForward(t *testing.T) {
	net := testNet(t)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	xs := make([]*tensor.Matrix, net.Cfg.SeqLen)
	for i := range xs {
		xs[i] = tensor.New(net.Cfg.Batch, net.Cfg.InputSize)
		xs[i].RandInit(r, 1)
	}
	a, err := net.Forward(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Forward(xs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := net.Cfg.Layers - 1
	if !a.H[last][net.Cfg.SeqLen-1].Equal(b.H[last][net.Cfg.SeqLen-1], 0) {
		t.Fatal("loaded network computes differently")
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xff
	// Fix the CRC so only the magic check fires.
	fixed := append([]byte{}, raw[:len(raw)-4]...)
	var out bytes.Buffer
	out.Write(fixed)
	crcOf(&out, fixed)
	_, err := Load(&out)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected magic error, got %v", err)
	}
}

func TestVersionMismatchReported(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Rewrite the version token ("v2" -> "v9") and re-seal the CRC so
	// only the version check can fire.
	payload := append([]byte{}, raw[:len(raw)-4]...)
	payload[len(magicPrefix)+1] = '9'
	var out bytes.Buffer
	out.Write(payload)
	crcOf(&out, payload)
	_, err := Load(&out)
	if err == nil {
		t.Fatal("expected version error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"v9"`) || !strings.Contains(msg, `"v2"`) {
		t.Fatalf("version error %q does not name got (v9) and want (v2)", msg)
	}
}

func TestCheckConfig(t *testing.T) {
	base := model.Config{InputSize: 5, Hidden: 7, Layers: 2, SeqLen: 4,
		Batch: 3, OutSize: 6, Loss: model.PerTimestampLoss}
	if err := CheckConfig(base, base); err != nil {
		t.Fatalf("equal configs: %v", err)
	}
	got := base
	got.Hidden = 16
	got.Loss = model.SingleLoss
	err := CheckConfig(got, base)
	if err == nil {
		t.Fatal("expected mismatch error")
	}
	msg := err.Error()
	for _, want := range []string{"Hidden 16 (want 7)", "Loss", "mismatch"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("mismatch error %q missing %q", msg, want)
		}
	}
	// Matching fields stay out of the diff.
	if strings.Contains(msg, "InputSize") {
		t.Fatalf("mismatch error %q names a matching field", msg)
	}
}

// crcOf appends the IEEE CRC of payload to out.
func crcOf(out *bytes.Buffer, payload []byte) {
	sum := crc32.ChecksumIEEE(payload)
	out.Write([]byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)})
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x01 // flip one payload bit
	_, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("expected checksum error, got %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, err := Load(bytes.NewReader(raw[:len(raw)/2]))
	if err == nil {
		t.Fatal("expected error for truncated checkpoint")
	}
	_, err = Load(bytes.NewReader(raw[:4]))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("expected truncation error, got %v", err)
	}
}

func TestTrailingGarbageDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	payload := append([]byte{}, raw[:len(raw)-4]...)
	payload = append(payload, 0xde, 0xad)
	resealDigest(payload)
	var out bytes.Buffer
	out.Write(payload)
	crcOf(&out, payload)
	_, err := Load(&out)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("expected trailing-bytes error, got %v", err)
	}
}

// resealDigest recomputes a v2 checkpoint's stored digest over its
// (possibly mutated) body so that only checks past the digest can fire.
func resealDigest(payload []byte) {
	sum := sha256.Sum256(payload[len(magic)+sha256.Size:])
	copy(payload[len(magic):], sum[:])
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.etalstm")
	net := testNet(t)
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	// Atomic write: no temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cfg != net.Cfg {
		t.Fatal("file roundtrip config mismatch")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error")
	}
}

// TestDigestRoundtrip pins the content-identity contract: Digest(net),
// the digest stored by Save, and the digests reported by every Load
// variant all agree, and saving twice yields the same digest.
func TestDigestRoundtrip(t *testing.T) {
	net := testNet(t)
	want, err := Digest(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 64 {
		t.Fatalf("digest %q is not hex SHA-256", want)
	}

	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	got, digest, err := LoadDigest(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if digest != want {
		t.Fatalf("LoadDigest = %s, Digest = %s", digest, want)
	}
	if d2, err := Digest(got); err != nil || d2 != want {
		t.Fatalf("digest not stable across roundtrip: %s vs %s (%v)", d2, want, err)
	}

	var buf2 bytes.Buffer
	if err := Save(&buf2, net); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatal("Save is not deterministic")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.etalstm")
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	if d, err := DigestFile(path); err != nil || d != want {
		t.Fatalf("DigestFile = %s (%v), want %s", d, err, want)
	}
	if _, d, err := LoadFileDigest(path); err != nil || d != want {
		t.Fatalf("LoadFileDigest = %s (%v), want %s", d, err, want)
	}
}

// TestV1BackCompat: a legacy v1 checkpoint (no digest field) still
// loads, and its computed digest equals the v2 digest of the same
// weights — the identity is stable across the version bump.
func TestV1BackCompat(t *testing.T) {
	net := testNet(t)
	body, err := payload(net)
	if err != nil {
		t.Fatal(err)
	}
	v1 := append(append([]byte{}, magicV1...), body...)
	var out bytes.Buffer
	out.Write(v1)
	crcOf(&out, v1)

	got, digest, err := LoadDigest(&out)
	if err != nil {
		t.Fatalf("v1 checkpoint failed to load: %v", err)
	}
	if got.Cfg != net.Cfg {
		t.Fatal("v1 roundtrip config mismatch")
	}
	want, err := Digest(net)
	if err != nil {
		t.Fatal(err)
	}
	if digest != want {
		t.Fatalf("v1 digest %s != v2 digest %s for identical weights", digest, want)
	}
}

// TestCorruptedDigestDetected is the negative test for the digest
// field: a flipped digest byte (CRC re-sealed so only the digest check
// can fire) must fail loudly, as must a mutated payload whose CRC was
// re-sealed but whose stored digest was not.
func TestCorruptedDigestDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testNet(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a byte inside the stored digest.
	p1 := append([]byte{}, raw[:len(raw)-4]...)
	p1[len(magic)+3] ^= 0x5a
	var out1 bytes.Buffer
	out1.Write(p1)
	crcOf(&out1, p1)
	if _, err := Load(&out1); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("expected digest-mismatch error for corrupted header, got %v", err)
	}

	// Flip a weight byte and re-seal only the CRC: the digest is now the
	// last line of defense.
	p2 := append([]byte{}, raw[:len(raw)-4]...)
	p2[len(p2)-5] ^= 0x5a
	var out2 bytes.Buffer
	out2.Write(p2)
	crcOf(&out2, p2)
	if _, err := Load(&out2); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("expected digest-mismatch error for mutated payload, got %v", err)
	}
}
