package persist

import (
	"bytes"
	"testing"

	"etalstm/internal/model"
	"etalstm/internal/rng"
)

// FuzzLoad throws arbitrary bytes (seeded with a valid checkpoint) at
// the loader: it must never panic and must reject anything that is not
// a bit-exact checkpoint.
func FuzzLoad(f *testing.F) {
	cfg := model.Config{InputSize: 2, Hidden: 3, Layers: 1, SeqLen: 2,
		Batch: 1, OutSize: 2, Loss: model.SingleLoss}
	net, err := model.NewNetwork(cfg, rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("\xce\xb7LSTMv1\n garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for mutations
		}
		// Anything accepted must be a structurally valid network.
		if got == nil {
			t.Fatal("nil network with nil error")
		}
		if err := got.Cfg.Validate(); err != nil {
			t.Fatalf("accepted invalid config: %v", err)
		}
	})
}
