// Package persist serializes trained networks to a compact, versioned
// binary format (little-endian, stdlib only). Checkpointing matters for
// the large-model training the paper targets: multi-day runs need
// restartable state, and the footprint experiments need identical
// weights across baseline and optimized flows.
//
// Format (version 2):
//
//	magic "ηLSTMv2\n" (9 bytes UTF-8) |
//	SHA-256 content digest (32 bytes) of everything after this field |
//	config (7 × int64: input, hidden, layers, seqLen, batch, out, loss) |
//	per layer: 4 gates × (W floats, U floats, B floats) |
//	projection floats | projection bias floats |
//	trailing CRC-32 (IEEE) of everything before it.
//
// The digest is the checkpoint's content identity: two files carrying
// the same config and weights share it bit for bit, which is what the
// fleet's checkpoint hot-swap uses to verify every replica converged on
// the same weights. Version 1 files (no digest field) still load; their
// digest is computed from the payload on the fly, so the identity is
// stable across the version bump.
package persist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"

	"etalstm/internal/lstm"
	"etalstm/internal/model"
	"etalstm/internal/rng"
)

var (
	// magicPrefix identifies any η-LSTM checkpoint regardless of
	// version; the token between it and the terminating '\n' is the
	// format version, parsed separately so a version mismatch reports
	// got/want instead of a generic bad-magic error.
	magicPrefix = []byte("\xce\xb7LSTM") // "ηLSTM"
	version     = "v2"
	magic       = []byte(string(magicPrefix) + version + "\n")
	magicV1     = []byte(string(magicPrefix) + "v1\n")
)

// payload serializes net's version-independent content — config then
// weights, the bytes both the digest and the parsers operate on.
func payload(net *model.Network) ([]byte, error) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	cfg := net.Cfg
	header := []int64{
		int64(cfg.InputSize), int64(cfg.Hidden), int64(cfg.Layers),
		int64(cfg.SeqLen), int64(cfg.Batch), int64(cfg.OutSize), int64(cfg.Loss),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	for _, p := range net.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			if err := writeFloats(bw, p.W[g].Data); err != nil {
				return nil, err
			}
			if err := writeFloats(bw, p.U[g].Data); err != nil {
				return nil, err
			}
			if err := writeFloats(bw, p.B[g]); err != nil {
				return nil, err
			}
		}
	}
	if err := writeFloats(bw, net.Proj.Data); err != nil {
		return nil, err
	}
	if err := writeFloats(bw, net.ProjB); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Digest returns the hex SHA-256 content digest of net — the value a
// v2 checkpoint of net would carry in its header.
func Digest(net *model.Network) (string, error) {
	p, err := payload(net)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:]), nil
}

// Save writes net to w in the current (v2) format.
func Save(w io.Writer, net *model.Network) error {
	p, err := payload(net)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(p)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(magic); err != nil {
		return err
	}
	if _, err := mw.Write(sum[:]); err != nil {
		return err
	}
	if _, err := mw.Write(p); err != nil {
		return err
	}
	// Trailing CRC of everything above, written directly (not hashed).
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// verifyRaw checks a checkpoint's framing (length, CRC, magic/version,
// digest) and returns the version-independent payload plus its hex
// digest: v2 verifies the stored digest against the payload, v1
// computes it on the fly.
func verifyRaw(raw []byte) (body []byte, digest string, err error) {
	if len(raw) < len(magic)+4 {
		return nil, "", fmt.Errorf("persist: checkpoint truncated (%d bytes)", len(raw))
	}
	pay, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(pay) != binary.LittleEndian.Uint32(trailer) {
		return nil, "", fmt.Errorf("persist: checksum mismatch (corrupt checkpoint)")
	}
	switch {
	case bytes.HasPrefix(pay, magic): // v2: stored digest, verified
		rest := pay[len(magic):]
		if len(rest) < sha256.Size {
			return nil, "", fmt.Errorf("persist: checkpoint truncated inside the digest header")
		}
		want, body := rest[:sha256.Size], rest[sha256.Size:]
		got := sha256.Sum256(body)
		if !bytes.Equal(want, got[:]) {
			return nil, "", fmt.Errorf("persist: content digest mismatch (header %s, payload %s)",
				hex.EncodeToString(want)[:12], hex.EncodeToString(got[:])[:12])
		}
		return body, hex.EncodeToString(want), nil
	case bytes.HasPrefix(pay, magicV1): // legacy v1: no digest field
		body := pay[len(magicV1):]
		sum := sha256.Sum256(body)
		return body, hex.EncodeToString(sum[:]), nil
	case bytes.HasPrefix(pay, magicPrefix):
		// An η-LSTM checkpoint, but not our version: extract the
		// version token (up to the '\n' terminator) and say exactly
		// what was found versus what this build reads.
		rest := pay[len(magicPrefix):]
		got := rest
		if nl := bytes.IndexByte(rest, '\n'); nl >= 0 && nl <= 16 {
			got = rest[:nl]
		} else if len(got) > 16 {
			got = got[:16]
		}
		return nil, "", fmt.Errorf("persist: checkpoint format version %q, this build reads %q (and legacy \"v1\")", got, version)
	default:
		return nil, "", fmt.Errorf("persist: bad magic (not an η-LSTM checkpoint)")
	}
}

// parsePayload decodes the config+weights section shared by every
// format version.
func parsePayload(body []byte) (*model.Network, error) {
	br := bytes.NewReader(body)
	header := make([]int64, 7)
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("persist: reading header: %w", err)
		}
	}
	cfg := model.Config{
		InputSize: int(header[0]), Hidden: int(header[1]), Layers: int(header[2]),
		SeqLen: int(header[3]), Batch: int(header[4]), OutSize: int(header[5]),
		Loss: model.LossKind(header[6]),
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("persist: invalid checkpoint config: %w", err)
	}

	net, err := model.NewNetwork(cfg, rng.New(0))
	if err != nil {
		return nil, err
	}
	for _, p := range net.Layer {
		for g := lstm.Gate(0); g < lstm.NumGates; g++ {
			if err := readFloats(br, p.W[g].Data); err != nil {
				return nil, err
			}
			if err := readFloats(br, p.U[g].Data); err != nil {
				return nil, err
			}
			if err := readFloats(br, p.B[g]); err != nil {
				return nil, err
			}
		}
	}
	if err := readFloats(br, net.Proj.Data); err != nil {
		return nil, err
	}
	if err := readFloats(br, net.ProjB); err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after weights", br.Len())
	}
	return net, nil
}

// Load reads a network from r, verifying the trailing checksum (and,
// for v2 checkpoints, the content digest).
func Load(r io.Reader) (*model.Network, error) {
	net, _, err := LoadDigest(r)
	return net, err
}

// LoadDigest is Load plus the checkpoint's hex SHA-256 content digest.
func LoadDigest(r io.Reader) (*model.Network, string, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("persist: reading checkpoint: %w", err)
	}
	body, digest, err := verifyRaw(raw)
	if err != nil {
		return nil, "", err
	}
	net, err := parsePayload(body)
	if err != nil {
		return nil, "", err
	}
	return net, digest, nil
}

// CheckConfig compares a loaded checkpoint's geometry against what the
// caller expects and reports every differing field by name with its
// got/want values — "geometry mismatch" with two %+v dumps makes the
// reader diff seven fields by eye; this does the diff for them.
func CheckConfig(got, want model.Config) error {
	if got == want {
		return nil
	}
	type field struct {
		name      string
		got, want any
	}
	var diffs []string
	for _, f := range []field{
		{"InputSize", got.InputSize, want.InputSize},
		{"Hidden", got.Hidden, want.Hidden},
		{"Layers", got.Layers, want.Layers},
		{"SeqLen", got.SeqLen, want.SeqLen},
		{"Batch", got.Batch, want.Batch},
		{"OutSize", got.OutSize, want.OutSize},
		{"Loss", got.Loss, want.Loss},
	} {
		if f.got != f.want {
			diffs = append(diffs, fmt.Sprintf("%s %v (want %v)", f.name, f.got, f.want))
		}
	}
	return fmt.Errorf("persist: checkpoint config mismatch: %s", strings.Join(diffs, ", "))
}

func writeFloats(w io.Writer, fs []float32) error {
	buf := make([]byte, 4*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, fs []float32) error {
	buf := make([]byte, 4*len(fs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("persist: reading weights: %w", err)
	}
	for i := range fs {
		fs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

// SaveFile writes net to path atomically (temp file + rename).
func SaveFile(path string, net *model.Network) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, net); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a network from path.
func LoadFile(path string) (*model.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// LoadFileDigest reads a network and its content digest from path.
func LoadFileDigest(path string) (*model.Network, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return LoadDigest(f)
}

// DigestFile returns the content digest of the checkpoint at path after
// verifying its framing, without constructing the network — how the
// router learns what digest a checkpoint should land as before rolling
// it across the fleet.
func DigestFile(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	_, digest, err := verifyRaw(raw)
	return digest, err
}
