package etalstm

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// paramChecksum folds every parameter's float32 bit pattern into one
// sum, so two networks compare bitwise-equal iff the checksums match.
func paramChecksum(net *Network) uint64 {
	var sum uint64
	for _, p := range net.Layer {
		for g := 0; g < 4; g++ {
			for _, v := range p.W[g].Data {
				sum += uint64(math.Float32bits(v))
			}
			for _, v := range p.U[g].Data {
				sum += uint64(math.Float32bits(v))
			}
			for _, v := range p.B[g] {
				sum += uint64(math.Float32bits(v))
			}
		}
	}
	for _, v := range net.Proj.Data {
		sum += uint64(math.Float32bits(v))
	}
	for _, v := range net.ProjB {
		sum += uint64(math.Float32bits(v))
	}
	return sum
}

// TestSerialBitwiseGolden pins Workers == 1 training to golden values
// captured from the pre-parallel serial trainer: per-epoch losses as
// exact hex floats plus a parameter checksum, for every mode. Any
// float-level reordering in the refactored trainer trips this test.
func TestSerialBitwiseGolden(t *testing.T) {
	golden := map[Mode]struct {
		losses   []string
		checksum uint64
	}{
		Baseline: {
			losses: []string{
				"0x1.5973bcd7f35fp-01", "0x1.d35ef15b85fd3p-02", "0x1.02be8f7151dcep-02",
				"0x1.925516970de81p-04", "0x1.d4bd47e0da709p-05", "0x1.ab8985c39a874p-06",
			},
			checksum: 0x2a48cc5e5b41,
		},
		MS1: {
			losses: []string{
				"0x1.537696b1812b1p-01", "0x1.f2c117313a164p-02", "0x1.39431801a085p-02",
				"0x1.21bcb68cbec36p-03", "0x1.26575a32db14ap-04", "0x1.632c71c2d4c2dp-06",
			},
			checksum: 0x2a3ad7d9e1b1,
		},
		MS2: {
			losses: []string{
				"0x1.5973bcf1497a6p-01", "0x1.d35ef266de5a4p-02", "0x1.02be907c60388p-02",
				"0x1.8116e6f2557d5p-04", "0x1.ff77ceccc523cp-05", "0x1.051fae0c4623p-04",
			},
			checksum: 0x2a4c9a0e7039,
		},
		Combined: {
			losses: []string{
				"0x1.537696c4332f7p-01", "0x1.f2c116a8a3151p-02", "0x1.394317f632ab4p-02",
				"0x1.0247ffd6a1f04p-03", "0x1.2f409f8b65be8p-04", "0x1.5cf181ba26c7cp-04",
			},
			checksum: 0x2a3b9233ee23,
		},
	}

	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(64, 12, 8)
	for mode, want := range golden {
		net, err := NewNetwork(small.Cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrainer(net, mode, TrainerOptions{Workers: 1})
		stats, err := tr.Run(context.Background(), small.Provider(4, 1), 6)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for e, st := range stats {
			if got := fmt.Sprintf("%x", st.MeanLoss); got != want.losses[e] {
				t.Errorf("%v epoch %d loss: got %s, want %s", mode, e, got, want.losses[e])
			}
		}
		if got := paramChecksum(net); got != want.checksum {
			t.Errorf("%v parameter checksum: got %#x, want %#x", mode, got, want.checksum)
		}
	}
}

// TestParallelReproducible trains twice at Workers == 4 under every mode
// and demands bit-for-bit identical trajectories — the deterministic
// tree all-reduce must make parallel runs reproducible run-to-run.
func TestParallelReproducible(t *testing.T) {
	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(64, 12, 8)
	for _, mode := range []Mode{Baseline, MS1, MS2, Combined} {
		run := func() ([]EpochStats, uint64) {
			net, err := NewNetwork(small.Cfg, 42)
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTrainer(net, mode, TrainerOptions{Workers: 4})
			if got := tr.Workers(); got != 4 {
				t.Fatalf("Workers() = %d, want 4", got)
			}
			stats, err := tr.Run(context.Background(), small.Provider(8, 1), 5)
			if err != nil {
				t.Fatal(err)
			}
			return stats, paramChecksum(net)
		}
		s1, c1 := run()
		s2, c2 := run()
		if c1 != c2 {
			t.Errorf("%v: parallel run not reproducible: checksums %#x vs %#x", mode, c1, c2)
		}
		for e := range s1 {
			if s1[e].MeanLoss != s2[e].MeanLoss {
				t.Errorf("%v epoch %d: losses differ: %x vs %x", mode, e, s1[e].MeanLoss, s2[e].MeanLoss)
			}
			if s1[e].SkippedCells != s2[e].SkippedCells {
				t.Errorf("%v epoch %d: skip counts differ", mode, e)
			}
		}
	}
}

// cancellingProvider cancels its context the first time batch `at` is
// requested, simulating a caller interrupting training mid-epoch.
type cancellingProvider struct {
	Provider
	at     int
	cancel context.CancelFunc
}

func (p *cancellingProvider) Batch(i int) Batch {
	if i == p.at {
		p.cancel()
	}
	return p.Provider.Batch(i)
}

// TestRunCancellation verifies that cancellation surfaces promptly as
// ctx.Err() from both the serial and the data-parallel path, without
// running the epoch to completion.
func TestRunCancellation(t *testing.T) {
	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(64, 10, 8)
	for _, workers := range []int{1, 2} {
		net, err := NewNetwork(small.Cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrainer(net, Combined, TrainerOptions{Workers: workers})

		// Already-cancelled context: no batch may run.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		st, err := tr.RunEpoch(ctx, small.Provider(4, 1), 0)
		if err != context.Canceled {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if st.TotalCells != 0 && st.MeanLoss != 0 {
			t.Fatalf("workers=%d: epoch ran despite cancelled context", workers)
		}

		// Mid-epoch cancellation: the provider cancels while batches are
		// still pending; the epoch must stop early with ctx.Err().
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
		prov := &cancellingProvider{Provider: small.Provider(6, 1), at: 2 * workers, cancel: cancel}
		if _, err := tr.RunEpoch(ctx, prov, 0); err != context.Canceled {
			t.Fatalf("workers=%d: mid-epoch cancel: want context.Canceled, got %v", workers, err)
		}
		if _, err := tr.Run(context.Background(), small.Provider(2, 1), 1); err != nil {
			t.Fatalf("workers=%d: trainer must stay usable after a cancelled epoch: %v", workers, err)
		}
	}
}

// TestClipOptions pins the Clip sentinel semantics: 0 keeps the historic
// default of 5 (so existing zero-value callers are unchanged), while any
// negative value — NoClip being the readable spelling — disables
// clipping entirely instead of silently re-enabling the default.
func TestClipOptions(t *testing.T) {
	bench, err := BenchmarkByName("IMDB")
	if err != nil {
		t.Fatal(err)
	}
	small := bench.Scaled(64, 10, 8)
	train := func(clip float64) uint64 {
		net, err := NewNetwork(small.Cfg, 42)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrainer(net, Baseline, TrainerOptions{
			Optimizer: &SGD{LR: 2}, Clip: clip, Workers: 1,
		})
		if _, err := tr.Run(context.Background(), small.Provider(3, 1), 2); err != nil {
			t.Fatal(err)
		}
		return paramChecksum(net)
	}
	zero, five := train(0), train(5)
	noClip, minusTwo := train(NoClip), train(-2)
	tiny := train(0.001) // gradient norms certainly exceed 0.001
	if zero != five {
		t.Error("Clip: 0 must mean the default clip of 5")
	}
	if noClip != minusTwo {
		t.Error("every negative Clip must mean no clipping")
	}
	if noClip == tiny {
		t.Error("NoClip produced the same weights as a heavily clipped run — clipping was not disabled")
	}
}

// TestAnalyzeMatchesDeprecatedWrappers keeps the deprecated DataMovement
// and FootprintFor wrappers exactly consistent with Analyze.
func TestAnalyzeMatchesDeprecatedWrappers(t *testing.T) {
	for _, name := range []string{"IMDB", "WMT", "WAYMO"} {
		bench, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{Baseline, MS1, MS2, Combined} {
			a := Analyze(bench.Cfg, mode)
			if a.Cfg != bench.Cfg || a.Mode != mode {
				t.Fatalf("%s/%v: Analysis must echo its inputs", name, mode)
			}
			if got := DataMovement(bench.Cfg, mode); got != a.Movement {
				t.Errorf("%s/%v: DataMovement diverges from Analyze", name, mode)
			}
			if got := FootprintFor(bench.Cfg, mode); got != a.Footprint {
				t.Errorf("%s/%v: FootprintFor diverges from Analyze", name, mode)
			}
			if a.Movement.Total() <= 0 || a.Footprint.Total() <= 0 {
				t.Errorf("%s/%v: degenerate analysis %+v", name, mode, a)
			}
		}
	}
}

// TestKernelWorkers exercises the package-level kernel parallelism knob.
func TestKernelWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(3); prev != orig {
		t.Fatalf("SetWorkers returned %d, want previous value %d", prev, orig)
	}
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0) // clamped
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d, want >= 1 after clamping", got)
	}
}

// TestWorkersResolution checks the Workers option's 0-derives-a-default
// contract.
func TestWorkersResolution(t *testing.T) {
	bench, _ := BenchmarkByName("PTB")
	small := bench.Scaled(64, 8, 4)
	net, _ := NewNetwork(small.Cfg, 1)
	if got := NewTrainer(net, Baseline, TrainerOptions{}).Workers(); got < 1 || got > 8 {
		t.Fatalf("derived Workers = %d, want within [1, 8]", got)
	}
	if got := NewTrainer(net, Baseline, TrainerOptions{Workers: 3}).Workers(); got != 3 {
		t.Fatalf("explicit Workers = %d, want 3", got)
	}
}
