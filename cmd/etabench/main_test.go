package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	ids := strings.Fields(out.String())
	if len(ids) == 0 {
		t.Fatal("-list printed no experiment ids")
	}
	for _, id := range ids {
		if strings.ContainsAny(id, " \t") {
			t.Errorf("experiment id %q contains whitespace", id)
		}
	}
}

// TestRunSingleExperiment drives one fast analytic experiment (fig5 is
// a closed-form footprint model, no training) end to end through the
// flag seam.
func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig5") {
		t.Fatalf("report does not name its experiment:\n%s", out.String())
	}
}

func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.txt")
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out.String() {
		t.Error("-o file contents differ from stdout")
	}
}

// TestRunPhases checks -phases trains with phase recording on and
// prints a breakdown that names every hot-path phase plus the
// coordinator phases (the run uses two replica workers).
func TestRunPhases(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-phases"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"phase breakdown", "FW", "recompute-FW", "BP-EW-P1", "BP-EW-P2",
		"BP-MatMul", "all-reduce", "optimizer", "total",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("phase table missing %q:\n%s", want, s)
		}
	}
}

// TestRunPhasesSparse drives the sparse-backward variant of -phases:
// same table shape, and the header records the BP flavour plus the
// measured prune ratio the span reductions are judged against.
func TestRunPhasesSparse(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-phases", "-sparse", "-topk", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"sparse BP (top-4)", "prune ratio", "BP-EW-P2", "BP-MatMul", "total",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("sparse phase table missing %q:\n%s", want, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-exp", "fig999"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
