// Command etabench regenerates the paper's tables and figures.
//
// Usage:
//
//	etabench -list
//	etabench -exp fig15a
//	etabench -exp all [-full] [-seed 42] [-o results.txt]
//
// Each experiment prints an aligned text table plus notes comparing the
// measured values with the paper's reported numbers. -full runs the
// training-backed experiments (fig6, fig8, table2) at larger scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"etalstm"
	"etalstm/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etabench:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, output goes to stdout, failures return instead of exiting.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("etabench", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment ids and exit")
		exp     = fs.String("exp", "all", "experiment id to run, or 'all'")
		full    = fs.Bool("full", false, "run training-backed experiments at full scale")
		seed    = fs.Uint64("seed", 42, "seed for training-backed experiments")
		out     = fs.String("o", "", "also write the output to this file")
		kernelW = fs.Int("kernel-workers", 0, "goroutines per tensor kernel (0 = keep default)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
		phases  = fs.Bool("phases", false, "print a per-phase wall-time breakdown of a short training run and exit")
		sparse  = fs.Bool("sparse", false, "with -phases: run the pair-driven sparse backward kernels")
		topK    = fs.Int("topk", 0, "with -sparse: per-row top-k cap on the weight-gradient MatMuls (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obs.RegisterBuildInfo(obs.Default)

	if *kernelW > 0 {
		etalstm.SetWorkers(*kernelW)
	}
	finish, err := profileTo(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer finish()

	if *list {
		for _, id := range etalstm.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}
	if *phases {
		return runPhases(stdout, *seed, *full, *sparse, *topK)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	opts := etalstm.ExperimentOptions{Quick: !*full, Seed: *seed}
	if *exp == "all" {
		reps, err := etalstm.RunAllExperiments(opts)
		if err != nil {
			return err
		}
		for _, rep := range reps {
			fmt.Fprintln(w, rep)
		}
		return nil
	}
	for _, id := range strings.Split(*exp, ",") {
		rep, err := etalstm.RunExperiment(strings.TrimSpace(id), opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
	}
	return nil
}

// runPhases trains a few combined-mode epochs with phase recording on
// and prints the per-phase wall-time breakdown (FW, recompute-FW,
// BP-EW-P1, BP-EW-P2, BP-MatMul, all-reduce, optimizer). Two replica
// workers are used so the coordinator phases show up alongside the
// kernel phases, and a third-of-peak memory budget so checkpointed
// BPTT's recompute-FW phase appears in the table. With sparse set the
// backward pass runs the pair-driven kernels, so the BP-EW-P2 and
// BP-MatMul rows shrink in proportion to the printed prune ratio.
func runPhases(w io.Writer, seed uint64, full, sparse bool, topK int) error {
	bench, err := etalstm.BenchmarkByName("IMDB")
	if err != nil {
		return err
	}
	hiddenDiv, seqCap, batchCap, epochs, batches := 64, 16, 8, 3, 4
	if full {
		hiddenDiv, seqCap, batchCap, epochs = 16, 32, 16, 5
	}
	bench = bench.Scaled(hiddenDiv, seqCap, batchCap)
	net, err := etalstm.NewNetwork(bench.Cfg, seed)
	if err != nil {
		return err
	}
	budget := etalstm.PlanFor(bench.Cfg, etalstm.Combined, 0).FullPeak / 3
	if pl := etalstm.PlanFor(bench.Cfg, etalstm.Combined, budget); !pl.Feasible {
		budget = 0 // geometry too small to checkpoint; keep full storage
	}
	tr := etalstm.NewTrainer(net, etalstm.Combined, etalstm.TrainerOptions{
		Workers: 2, RecordPhases: true, MemoryBudget: budget,
		SparseBackward: sparse, BackwardTopK: topK,
	})
	prov := bench.Provider(batches, seed)
	var prune float64
	for e := 0; e < epochs; e++ {
		st, err := tr.RunEpoch(context.Background(), prov, e)
		if err != nil {
			return err
		}
		prune = st.PruneStats.Frac()
	}
	bp := "dense BP"
	if sparse {
		bp = "sparse BP"
		if topK > 0 {
			bp = fmt.Sprintf("sparse BP (top-%d)", topK)
		}
	}
	fmt.Fprintf(w, "phase breakdown: %s, combined mode, %s, %d epochs x %d batches, H=%d LL=%d B=%d, 2 workers, budget %d B, prune ratio %.2f\n",
		bench.Name, bp, epochs, batches, bench.Cfg.Hidden, bench.Cfg.SeqLen, bench.Cfg.Batch, budget, prune)
	fmt.Fprint(w, obs.BreakdownTable(tr.Phases()))
	return nil
}

// profileTo starts CPU profiling (when cpuPath is non-empty) and returns
// a cleanup that stops it and writes a heap profile (when memPath is
// non-empty). Both paths are pprof files for `go tool pprof`.
func profileTo(cpuPath, memPath string) (func(), error) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "etabench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable buffers so the profile shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "etabench:", err)
			}
		}
	}, nil
}
