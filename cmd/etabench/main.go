// Command etabench regenerates the paper's tables and figures.
//
// Usage:
//
//	etabench -list
//	etabench -exp fig15a
//	etabench -exp all [-full] [-seed 42] [-o results.txt]
//
// Each experiment prints an aligned text table plus notes comparing the
// measured values with the paper's reported numbers. -full runs the
// training-backed experiments (fig6, fig8, table2) at larger scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"etalstm"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		exp     = flag.String("exp", "all", "experiment id to run, or 'all'")
		full    = flag.Bool("full", false, "run training-backed experiments at full scale")
		seed    = flag.Uint64("seed", 42, "seed for training-backed experiments")
		out     = flag.String("o", "", "also write the output to this file")
		kernelW = flag.Int("kernel-workers", 0, "goroutines per tensor kernel (0 = keep default)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *kernelW > 0 {
		etalstm.SetWorkers(*kernelW)
	}
	defer profileTo(*cpuProf, *memProf)()

	if *list {
		for _, id := range etalstm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := etalstm.ExperimentOptions{Quick: !*full, Seed: *seed}
	if *exp == "all" {
		reps, err := etalstm.RunAllExperiments(opts)
		if err != nil {
			fatal(err)
		}
		for _, rep := range reps {
			fmt.Fprintln(w, rep)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		rep, err := etalstm.RunExperiment(strings.TrimSpace(id), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, rep)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etabench:", err)
	os.Exit(1)
}

// profileTo starts CPU profiling (when cpuPath is non-empty) and returns
// a cleanup that stops it and writes a heap profile (when memPath is
// non-empty). Both paths are pprof files for `go tool pprof`.
func profileTo(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush unreachable buffers so the profile shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}
	}
}
