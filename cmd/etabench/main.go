// Command etabench regenerates the paper's tables and figures.
//
// Usage:
//
//	etabench -list
//	etabench -exp fig15a
//	etabench -exp all [-full] [-seed 42] [-o results.txt]
//
// Each experiment prints an aligned text table plus notes comparing the
// measured values with the paper's reported numbers. -full runs the
// training-backed experiments (fig6, fig8, table2) at larger scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"etalstm"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		exp     = flag.String("exp", "all", "experiment id to run, or 'all'")
		full    = flag.Bool("full", false, "run training-backed experiments at full scale")
		seed    = flag.Uint64("seed", 42, "seed for training-backed experiments")
		out     = flag.String("o", "", "also write the output to this file")
		kernelW = flag.Int("kernel-workers", 0, "goroutines per tensor kernel (0 = keep default)")
	)
	flag.Parse()

	if *kernelW > 0 {
		etalstm.SetWorkers(*kernelW)
	}

	if *list {
		for _, id := range etalstm.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := etalstm.ExperimentOptions{Quick: !*full, Seed: *seed}
	if *exp == "all" {
		reps, err := etalstm.RunAllExperiments(opts)
		if err != nil {
			fatal(err)
		}
		for _, rep := range reps {
			fmt.Fprintln(w, rep)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		rep, err := etalstm.RunExperiment(strings.TrimSpace(id), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, rep)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etabench:", err)
	os.Exit(1)
}
