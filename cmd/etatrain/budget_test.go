package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"etalstm"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"":        0,
		"65536":   65536,
		"64B":     64,
		"320KiB":  320 << 10,
		"512MiB":  512 << 20,
		"2GiB":    2 << 30,
		"5kb":     5_000,
		"3MB":     3_000_000,
		"1gb":     1_000_000_000,
		" 16 KiB": 16 << 10,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"x", "-5", "12XiB", "KiB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) should fail", bad)
		}
	}
}

// TestMemBudgetFlag drives -mem-budget through the benchmark path and
// checks the plan and measured-peak reporting.
func TestMemBudgetFlag(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-bench", "IMDB", "-mode", "baseline", "-epochs", "2", "-batches", "2",
		"-hidden-div", "64", "-seq", "48", "-batch", "4", "-mem-budget", "96KiB",
	}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"memory budget 98304 B:", "checkpoint column", "measured peak stored"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	peak, budget := parsePeakLine(t, s)
	if peak <= 0 || peak > budget {
		t.Fatalf("measured peak %d B outside budget %d B:\n%s", peak, budget, s)
	}
}

func TestMemBudgetInfeasibleFailsFast(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), tinyArgs("-mem-budget", "64B"), &out)
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("want infeasible error, got %v", err)
	}
}

// TestLongSeqSmoke is the acceptance scenario: a seqlen-4096 byte-level
// LM run under a budget that provably cannot hold full storage (25% of
// the full-storage peak) completes with the measured peak under budget.
func TestLongSeqSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long-sequence smoke test")
	}
	corpus := filepath.Join(t.TempDir(), "corpus.txt")
	var text bytes.Buffer
	for text.Len() < 8500 {
		text.WriteString("the quick brown fox jumps over the lazy dog; ")
	}
	if err := os.WriteFile(corpus, text.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	const seqLen = 4096
	cfg := etalstm.Config{
		InputSize: 32, Hidden: 8, Layers: 2, SeqLen: seqLen, Batch: 1,
		OutSize: 256, Loss: etalstm.PerTimestampLoss,
	}
	full := etalstm.PlanFor(cfg, etalstm.Baseline, 0).FullPeak
	budget := full / 4
	pl := etalstm.PlanFor(cfg, etalstm.Baseline, budget)
	if pl.FullStorage() || !pl.Feasible {
		t.Fatalf("quarter budget %d B must force checkpointing, got %+v", budget, pl)
	}

	var out bytes.Buffer
	args := []string{
		"-corpus", corpus, "-mode", "baseline", "-workers", "1",
		"-hidden", "8", "-seq", strconv.Itoa(seqLen), "-batch", "1",
		"-epochs", "1", "-batches", "1",
		"-mem-budget", fmt.Sprintf("%dB", budget),
	}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "epoch  0") {
		t.Fatalf("run did not train:\n%s", s)
	}
	peak, b := parsePeakLine(t, s)
	if b != budget {
		t.Fatalf("reported budget %d != requested %d", b, budget)
	}
	if peak <= 0 || peak > budget {
		t.Fatalf("seqlen-%d measured peak %d B not under budget %d B:\n%s", seqLen, peak, budget, s)
	}
}

var peakLine = regexp.MustCompile(`measured peak stored (\d+) B \(budget (\d+) B, predicted (\d+) B\)`)

func parsePeakLine(t *testing.T, s string) (peak, budget int64) {
	t.Helper()
	m := peakLine.FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no measured-peak line in output:\n%s", s)
	}
	peak, _ = strconv.ParseInt(m[1], 10, 64)
	budget, _ = strconv.ParseInt(m[2], 10, 64)
	return peak, budget
}
