package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinyArgs shrinks a benchmark far enough that a full end-to-end run —
// flag parsing, scaling, training, evaluation, footprint report — takes
// well under a second.
func tinyArgs(extra ...string) []string {
	args := []string{
		"-bench", "TREC-10", "-epochs", "2", "-batches", "2",
		"-hidden-div", "256", "-seq", "4", "-batch", "2",
	}
	return append(args, extra...)
}

func TestRunEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), tinyArgs(), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"benchmark TREC-10", "epoch  0", "epoch  1", "eval:", "modeled footprint"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunEveryMode(t *testing.T) {
	for _, mode := range []string{"baseline", "ms1", "ms2", "combined"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			var out bytes.Buffer
			if err := run(context.Background(), tinyArgs("-mode", mode), &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "eval:") {
				t.Errorf("mode %s produced no eval line:\n%s", mode, out.String())
			}
		})
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "net.ckpt")
	var out bytes.Buffer
	if err := run(context.Background(), tinyArgs("-save", ckpt), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint written") {
		t.Fatalf("no checkpoint confirmation:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), tinyArgs("-load", ckpt, "-epochs", "1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed from") {
		t.Fatalf("no resume confirmation:\n%s", out.String())
	}
}

// syncBuffer lets the smoke test read run()'s output while the run is
// still writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestObsSmoke drives -metrics-addr end to end: start a tiny training
// run with the metrics endpoint on an ephemeral port, scrape GET
// /metrics while it trains until the MS1 prune-ratio gauge appears in
// Prometheus text form, then interrupt the run. `make obs-smoke` runs
// exactly this test.
func TestObsSmoke(t *testing.T) {
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		// Enough epochs that training outlives the scrape loop; the test
		// cancels the context as soon as it has what it needs.
		done <- run(ctx, tinyArgs("-epochs", "100000", "-metrics-addr", "127.0.0.1:0"), &out)
	}()

	deadline := time.Now().Add(15 * time.Second)
	urlRe := regexp.MustCompile(`metrics: (http://\S+)`)
	var url string
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics URL never printed:\n%s", out.String())
		}
		if m := urlRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		}
		time.Sleep(2 * time.Millisecond)
	}

	var body string
	for !strings.Contains(body, "etalstm_ms1_prune_ratio") {
		if time.Now().After(deadline) {
			t.Fatalf("prune-ratio metric never appeared; last scrape:\n%s", body)
		}
		if resp, err := http.Get(url); err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE etalstm_epochs_total counter",
		"# TYPE etalstm_step_latency_seconds histogram",
		"etalstm_epoch_loss",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("canceled metrics run did not report interruption:\n%s", out.String())
	}
}

func TestRunFlagAndArgumentErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-bench", "NOPE"},
		{"-mode", "warp-speed"},
		{"-load", filepath.Join(t.TempDir(), "absent.ckpt")},
		{"-metrics-addr", "256.256.256.256:bad"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	// A pre-canceled context must stop between groups and still exit
	// cleanly through the interrupted path, not error out.
	if err := run(ctx, tinyArgs(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("canceled run did not report interruption:\n%s", out.String())
	}
}

// TestDistSmoke drives the full multi-process topology in one process:
// a coordinator on an ephemeral loopback port plus two workers, each a
// complete run() invocation exactly as the CLI would launch them, with
// compressed gradient sync. It asserts the session forms, trains, and
// converges (final epoch loss below the first), and that the wire
// accounting is reported. `make dist-smoke` runs exactly this test.
func TestDistSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var coordOut syncBuffer
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(ctx, tinyArgs(
			"-coordinator", "127.0.0.1:0", "-dist-workers", "2",
			"-dist-keep", "0.2", "-dist-warmup", "2",
		), &coordOut)
	}()

	// The coordinator prints its resolved address once listening.
	addrRe := regexp.MustCompile(`coordinator on ([^\s]+): waiting`)
	var addr string
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if m := addrRe.FindStringSubmatch(coordOut.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-coordDone:
			t.Fatalf("coordinator exited before listening: %v\n%s", err, coordOut.String())
		default:
		}
	}
	if addr == "" {
		t.Fatalf("coordinator never printed its address:\n%s", coordOut.String())
	}

	workerArgs := tinyArgs(
		"-worker", addr, "-mode", "baseline", "-epochs", "6",
		"-dist-keep", "0.2", "-dist-warmup", "2",
	)
	outs := make([]syncBuffer, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run(ctx, workerArgs, &outs[i])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v\n%s", i, errs[i], outs[i].String())
		}
	}
	if err := <-coordDone; err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coordOut.String())
	}

	lossRe := regexp.MustCompile(`epoch\s+(\d+)\s+loss\s+([0-9.]+)`)
	for i := range outs {
		out := outs[i].String()
		if !strings.Contains(out, "distributed: worker") {
			t.Fatalf("worker %d never joined the session:\n%s", i, out)
		}
		losses := lossRe.FindAllStringSubmatch(out, -1)
		if len(losses) != 6 {
			t.Fatalf("worker %d: %d epoch lines, want 6:\n%s", i, len(losses), out)
		}
		first, err1 := strconv.ParseFloat(losses[0][2], 64)
		last, err2 := strconv.ParseFloat(losses[len(losses)-1][2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("worker %d: unparsable losses %v %v", i, err1, err2)
		}
		// Convergence: the distributed run must actually learn.
		if !(last < first) {
			t.Errorf("worker %d did not converge: first epoch loss %g, last %g\n%s", i, first, last, out)
		}
		if !strings.Contains(out, "gradient sync:") {
			t.Errorf("worker %d: wire accounting line missing:\n%s", i, out)
		}
	}
	if !strings.Contains(coordOut.String(), "merged steps") {
		t.Errorf("coordinator summary missing:\n%s", coordOut.String())
	}
}
