package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinyArgs shrinks a benchmark far enough that a full end-to-end run —
// flag parsing, scaling, training, evaluation, footprint report — takes
// well under a second.
func tinyArgs(extra ...string) []string {
	args := []string{
		"-bench", "TREC-10", "-epochs", "2", "-batches", "2",
		"-hidden-div", "256", "-seq", "4", "-batch", "2",
	}
	return append(args, extra...)
}

func TestRunEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), tinyArgs(), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"benchmark TREC-10", "epoch  0", "epoch  1", "eval:", "modeled footprint"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunEveryMode(t *testing.T) {
	for _, mode := range []string{"baseline", "ms1", "ms2", "combined"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			var out bytes.Buffer
			if err := run(context.Background(), tinyArgs("-mode", mode), &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "eval:") {
				t.Errorf("mode %s produced no eval line:\n%s", mode, out.String())
			}
		})
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "net.ckpt")
	var out bytes.Buffer
	if err := run(context.Background(), tinyArgs("-save", ckpt), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint written") {
		t.Fatalf("no checkpoint confirmation:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), tinyArgs("-load", ckpt, "-epochs", "1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed from") {
		t.Fatalf("no resume confirmation:\n%s", out.String())
	}
}

// syncBuffer lets the smoke test read run()'s output while the run is
// still writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestObsSmoke drives -metrics-addr end to end: start a tiny training
// run with the metrics endpoint on an ephemeral port, scrape GET
// /metrics while it trains until the MS1 prune-ratio gauge appears in
// Prometheus text form, then interrupt the run. `make obs-smoke` runs
// exactly this test.
func TestObsSmoke(t *testing.T) {
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		// Enough epochs that training outlives the scrape loop; the test
		// cancels the context as soon as it has what it needs.
		done <- run(ctx, tinyArgs("-epochs", "100000", "-metrics-addr", "127.0.0.1:0"), &out)
	}()

	deadline := time.Now().Add(15 * time.Second)
	urlRe := regexp.MustCompile(`metrics: (http://\S+)`)
	var url string
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics URL never printed:\n%s", out.String())
		}
		if m := urlRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		}
		time.Sleep(2 * time.Millisecond)
	}

	var body string
	for !strings.Contains(body, "etalstm_ms1_prune_ratio") {
		if time.Now().After(deadline) {
			t.Fatalf("prune-ratio metric never appeared; last scrape:\n%s", body)
		}
		if resp, err := http.Get(url); err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE etalstm_epochs_total counter",
		"# TYPE etalstm_step_latency_seconds histogram",
		"etalstm_epoch_loss",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("canceled metrics run did not report interruption:\n%s", out.String())
	}
}

func TestRunFlagAndArgumentErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-bench", "NOPE"},
		{"-mode", "warp-speed"},
		{"-load", filepath.Join(t.TempDir(), "absent.ckpt")},
		{"-metrics-addr", "256.256.256.256:bad"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	// A pre-canceled context must stop between groups and still exit
	// cleanly through the interrupted path, not error out.
	if err := run(ctx, tinyArgs(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("canceled run did not report interruption:\n%s", out.String())
	}
}
