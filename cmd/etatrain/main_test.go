package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// tinyArgs shrinks a benchmark far enough that a full end-to-end run —
// flag parsing, scaling, training, evaluation, footprint report — takes
// well under a second.
func tinyArgs(extra ...string) []string {
	args := []string{
		"-bench", "TREC-10", "-epochs", "2", "-batches", "2",
		"-hidden-div", "256", "-seq", "4", "-batch", "2",
	}
	return append(args, extra...)
}

func TestRunEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), tinyArgs(), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"benchmark TREC-10", "epoch  0", "epoch  1", "eval:", "modeled footprint"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunEveryMode(t *testing.T) {
	for _, mode := range []string{"baseline", "ms1", "ms2", "combined"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			var out bytes.Buffer
			if err := run(context.Background(), tinyArgs("-mode", mode), &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "eval:") {
				t.Errorf("mode %s produced no eval line:\n%s", mode, out.String())
			}
		})
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "net.ckpt")
	var out bytes.Buffer
	if err := run(context.Background(), tinyArgs("-save", ckpt), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpoint written") {
		t.Fatalf("no checkpoint confirmation:\n%s", out.String())
	}
	out.Reset()
	if err := run(context.Background(), tinyArgs("-load", ckpt, "-epochs", "1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed from") {
		t.Fatalf("no resume confirmation:\n%s", out.String())
	}
}

func TestRunFlagAndArgumentErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-bench", "NOPE"},
		{"-mode", "warp-speed"},
		{"-load", filepath.Join(t.TempDir(), "absent.ckpt")},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	// A pre-canceled context must stop between groups and still exit
	// cleanly through the interrupted path, not error out.
	if err := run(ctx, tinyArgs(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Fatalf("canceled run did not report interruption:\n%s", out.String())
	}
}
