// Command etatrain trains one of the Table I benchmarks (at a chosen
// scale) under a selected optimization mode and reports per-epoch loss,
// skip statistics, pruning statistics and the modeled footprint.
//
// Usage:
//
//	etatrain -bench IMDB -mode combined -epochs 12
//	etatrain -bench WMT -mode ms1 -hidden-div 32 -seq 24 -batch 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"etalstm"
)

func main() {
	var (
		benchName = flag.String("bench", "IMDB", "benchmark: TREC-10, PTB, IMDB, WAYMO, WMT, BABI")
		modeName  = flag.String("mode", "combined", "baseline | ms1 | ms2 | combined")
		epochs    = flag.Int("epochs", 10, "training epochs")
		batches   = flag.Int("batches", 4, "minibatches per epoch")
		hiddenDiv = flag.Int("hidden-div", 64, "divide the paper's hidden size by this")
		seqCap    = flag.Int("seq", 16, "cap the layer length")
		batchCap  = flag.Int("batch", 8, "cap the batch size")
		seed      = flag.Uint64("seed", 42, "seed")
		workers   = flag.Int("workers", 1, "data-parallel replica workers (0 = derive from CPU count)")
		kernelW   = flag.Int("kernel-workers", 0, "goroutines per tensor kernel (0 = keep default)")
		corpusPth = flag.String("corpus", "", "train a byte-level LM on this text file instead of a benchmark")
		hidden    = flag.Int("hidden", 64, "hidden size for -corpus mode")
		loadPath  = flag.String("load", "", "resume from a checkpoint file")
		savePath  = flag.String("save", "", "write a checkpoint file after training")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *kernelW > 0 {
		etalstm.SetWorkers(*kernelW)
	}
	defer profileTo(*cpuProf, *memProf)()
	// Ctrl-C cancels training between minibatch groups instead of
	// killing the process mid-epoch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mode, err := parseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	topts := etalstm.TrainerOptions{Workers: *workers}
	if *corpusPth != "" {
		trainCorpus(ctx, *corpusPth, mode, topts, *hidden, *seqCap, *batchCap, *epochs, *batches, *seed)
		return
	}
	bench, err := etalstm.BenchmarkByName(*benchName)
	if err != nil {
		fatal(err)
	}
	full := bench
	bench = bench.Scaled(*hiddenDiv, *seqCap, *batchCap)
	fmt.Printf("benchmark %s (%v): paper geometry H=%d LN=%d LL=%d; training at H=%d LL=%d B=%d\n",
		full.Name, full.Cfg.Loss, full.Cfg.Hidden, full.Cfg.Layers, full.Cfg.SeqLen,
		bench.Cfg.Hidden, bench.Cfg.SeqLen, bench.Cfg.Batch)

	var net *etalstm.Network
	if *loadPath != "" {
		var err error
		net, err = etalstm.LoadNetwork(*loadPath)
		if err != nil {
			fatal(err)
		}
		if net.Cfg != bench.Cfg {
			fatal(fmt.Errorf("checkpoint geometry %+v does not match the requested scale %+v", net.Cfg, bench.Cfg))
		}
		fmt.Printf("resumed from %s\n", *loadPath)
	} else {
		var err error
		net, err = etalstm.NewNetwork(bench.Cfg, *seed)
		if err != nil {
			fatal(err)
		}
	}
	tr := etalstm.NewTrainer(net, mode, topts)
	if tr.Workers() > 1 {
		fmt.Printf("data-parallel: %d replica workers\n", tr.Workers())
	}
	prov := bench.Provider(*batches, *seed)

	for e := 0; e < *epochs; e++ {
		st, err := tr.RunEpoch(ctx, prov, e)
		if errors.Is(err, context.Canceled) {
			fmt.Println("interrupted; stopping after", e, "epochs")
			break
		}
		if err != nil {
			fatal(err)
		}
		line := fmt.Sprintf("epoch %2d  loss %.4f", e, st.MeanLoss)
		if st.SkipFrac > 0 {
			line += fmt.Sprintf("  skipped %.0f%% of BP cells", 100*st.SkipFrac)
		}
		if st.PruneStats.Elements > 0 {
			line += fmt.Sprintf("  pruned %.0f%% of P1", 100*st.PruneStats.Frac())
		}
		fmt.Println(line)
	}

	loss, acc, err := etalstm.Evaluate(net, bench.Provider(2, *seed+100))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("eval: loss %.4f accuracy %.1f%%\n", loss, 100*acc)

	if *savePath != "" {
		if err := etalstm.SaveNetwork(*savePath, net); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *savePath)
	}

	fp := tr.Footprint(full.Cfg)
	base := etalstm.Analyze(full.Cfg, etalstm.Baseline).Footprint
	fmt.Printf("modeled footprint at paper geometry: %.2f GB (baseline %.2f GB, -%.1f%%)\n",
		float64(fp.Total())/1e9, float64(base.Total())/1e9,
		100*(1-float64(fp.Total())/float64(base.Total())))
}

func parseMode(s string) (etalstm.Mode, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return etalstm.Baseline, nil
	case "ms1":
		return etalstm.MS1, nil
	case "ms2":
		return etalstm.MS2, nil
	case "combined", "combine-ms":
		return etalstm.Combined, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "etatrain:", err)
	os.Exit(1)
}

// profileTo starts CPU profiling (when cpuPath is non-empty) and returns
// a cleanup that stops it and writes a heap profile (when memPath is
// non-empty). Both paths are pprof files for `go tool pprof`.
func profileTo(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush unreachable buffers so the profile shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}
	}
}

// trainCorpus runs byte-level language modeling over a user text file.
func trainCorpus(ctx context.Context, path string, mode etalstm.Mode, topts etalstm.TrainerOptions, hidden, seqLen, batch, epochs, batches int, seed uint64) {
	c, err := etalstm.LoadCorpusFile(path, 32, seed)
	if err != nil {
		fatal(err)
	}
	cfg := c.Config(hidden, 2, seqLen, batch)
	fmt.Printf("corpus %s: %d bytes; byte-level LM H=%d LN=%d LL=%d B=%d\n",
		path, c.Len(), cfg.Hidden, cfg.Layers, cfg.SeqLen, cfg.Batch)
	prov, err := c.Provider(cfg, batches, seed)
	if err != nil {
		fatal(err)
	}
	net, err := etalstm.NewNetwork(cfg, seed)
	if err != nil {
		fatal(err)
	}
	tr := etalstm.NewTrainer(net, mode, topts)
	for e := 0; e < epochs; e++ {
		st, err := tr.RunEpoch(ctx, prov, e)
		if errors.Is(err, context.Canceled) {
			fmt.Println("interrupted; stopping after", e, "epochs")
			return
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("epoch %2d  loss %.4f  perplexity %.1f\n", e, st.MeanLoss, math.Exp(st.MeanLoss))
	}
}
