// Command etatrain trains one of the Table I benchmarks (at a chosen
// scale) under a selected optimization mode and reports per-epoch loss,
// skip statistics, pruning statistics and the modeled footprint.
//
// Usage:
//
//	etatrain -bench IMDB -mode combined -epochs 12
//	etatrain -bench WMT -mode ms1 -hidden-div 32 -seq 24 -batch 16
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"etalstm"
	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
)

func main() {
	// Ctrl-C cancels training between minibatch groups instead of
	// killing the process mid-epoch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etatrain:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, output goes to w, failures return instead of exiting.
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("etatrain", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "IMDB", "benchmark: TREC-10, PTB, IMDB, WAYMO, WMT, BABI")
		modeName  = fs.String("mode", "combined", "baseline | ms1 | ms2 | combined")
		epochs    = fs.Int("epochs", 10, "training epochs")
		batches   = fs.Int("batches", 4, "minibatches per epoch")
		hiddenDiv = fs.Int("hidden-div", 64, "divide the paper's hidden size by this")
		seqCap    = fs.Int("seq", 16, "cap the layer length")
		batchCap  = fs.Int("batch", 8, "cap the batch size")
		seed      = fs.Uint64("seed", 42, "seed")
		workers   = fs.Int("workers", 1, "data-parallel replica workers (0 = derive from CPU count)")
		kernelW   = fs.Int("kernel-workers", 0, "goroutines per tensor kernel (0 = keep default)")
		corpusPth = fs.String("corpus", "", "train a byte-level LM on this text file instead of a benchmark")
		memBudget = fs.String("mem-budget", "", `cap stored activation bytes per FW+BP pass, e.g. "512MiB" or "320KiB" (empty = full storage); tighter budgets checkpoint more and recompute FW segments during BP`)
		hidden    = fs.Int("hidden", 64, "hidden size for -corpus mode")
		loadPath  = fs.String("load", "", "resume from a checkpoint file")
		savePath  = fs.String("save", "", "write a checkpoint file after training")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		metrics   = fs.String("metrics-addr", "", `serve GET /metrics (Prometheus text) on this address while training (e.g. "127.0.0.1:9090")`)
		traceOn   = fs.Bool("trace", false, "record step traces in an in-process flight recorder: SIGQUIT dumps it, -metrics-addr exposes it at /debug/traces")

		coordAddr     = fs.String("coordinator", "", `run as a gradient-merge coordinator on this address (e.g. ":7600"): no training here, just deterministic merge + broadcast for -dist-workers worker processes with matching geometry flags`)
		workerAddr    = fs.String("worker", "", "join a multi-process run as a worker of the coordinator at this address")
		distWorkers   = fs.Int("dist-workers", 2, "(coordinator) worker processes to admit before training starts")
		distQuorum    = fs.Int("dist-quorum", 0, "(coordinator) admit a step once this many contributions arrived and stragglers exceeded -dist-deadline (0 = wait for all: the deterministic mode)")
		distDeadline  = fs.Duration("dist-deadline", 0, "(coordinator) straggler wait after the quorum is met (0 = 50ms)")
		distKeep      = fs.Float64("dist-keep", 0, "compress gradient sync payloads, keeping this top fraction per tensor with error feedback (0 = dense; try 0.05)")
		distThreshold = fs.Float64("dist-threshold", 0, "compress gradient sync payloads with an MS1-style near-zero cutoff instead of top-k (0 = off; overrides -dist-keep)")
		distWarmup    = fs.Int("dist-warmup", 0, "ship this many initial optimizer steps dense before compression kicks in (same value on coordinator and workers)")
		dataSeed      = fs.Uint64("data-seed", 0, "override the training data shard seed (0 = -seed, or derived from -seed and the worker id in distributed runs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obs.RegisterBuildInfo(obs.Default)

	if *kernelW > 0 {
		etalstm.SetWorkers(*kernelW)
	}
	var tracer *rtrace.Tracer
	if *traceOn {
		proc := "etatrain"
		if *coordAddr != "" {
			proc = "etatrain-coordinator"
		} else if *workerAddr != "" {
			proc = "etatrain-worker"
		}
		tracer = rtrace.Enable(rtrace.Options{Process: proc})
		defer tracer.DumpOnSignal(os.Stderr)()
	}
	if *metrics != "" {
		stopMetrics, err := serveMetrics(*metrics, tracer, w)
		if err != nil {
			return err
		}
		defer stopMetrics()
	}
	finish, err := profileTo(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer finish()

	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		return err
	}
	topts := etalstm.TrainerOptions{Workers: *workers, MemoryBudget: budget}
	compression := distCompression(*distKeep, *distThreshold, *distWarmup)
	if *corpusPth != "" {
		if *coordAddr != "" || *workerAddr != "" {
			return fmt.Errorf("distributed training requires a -bench geometry; -corpus is not supported")
		}
		return trainCorpus(ctx, w, *corpusPth, mode, topts, *hidden, *seqCap, *batchCap, *epochs, *batches, *seed)
	}
	bench, err := etalstm.BenchmarkByName(*benchName)
	if err != nil {
		return err
	}
	full := bench
	bench = bench.Scaled(*hiddenDiv, *seqCap, *batchCap)

	if *coordAddr != "" {
		return runCoordinator(ctx, w, *coordAddr, bench.Cfg, etalstm.CoordinatorOptions{
			ExpectWorkers: *distWorkers,
			Quorum:        *distQuorum,
			Deadline:      *distDeadline,
			Compression:   compression,
		})
	}
	fmt.Fprintf(w, "benchmark %s (%v): paper geometry H=%d LN=%d LL=%d; training at H=%d LL=%d B=%d\n",
		full.Name, full.Cfg.Loss, full.Cfg.Hidden, full.Cfg.Layers, full.Cfg.SeqLen,
		bench.Cfg.Hidden, bench.Cfg.SeqLen, bench.Cfg.Batch)

	var net *etalstm.Network
	if *loadPath != "" {
		net, err = etalstm.LoadNetwork(*loadPath)
		if err != nil {
			return err
		}
		if err := etalstm.CheckConfig(net.Cfg, bench.Cfg); err != nil {
			return fmt.Errorf("%w (adjust -hidden-div/-seq/-batch to the checkpoint's scale)", err)
		}
		fmt.Fprintf(w, "resumed from %s\n", *loadPath)
	} else {
		net, err = etalstm.NewNetwork(bench.Cfg, *seed)
		if err != nil {
			return err
		}
	}
	var wk *etalstm.WorkerSync
	provSeed := *seed
	if *workerAddr != "" {
		wk, err = etalstm.DialSync(*workerAddr, bench.Cfg, etalstm.WorkerSyncOptions{Compression: compression})
		if err != nil {
			return err
		}
		defer wk.Close()
		topts.Sync = wk
		fmt.Fprintf(w, "distributed: worker %d of %d via %s\n", wk.ID(), wk.Total(), *workerAddr)
		// Distinct shards by default: each worker trains different data
		// but applies the identical merged step.
		provSeed = *seed + 1000003*uint64(wk.ID())
	}
	if *dataSeed != 0 {
		provSeed = *dataSeed
	}
	tr := etalstm.NewTrainer(net, mode, topts)
	if tr.Workers() > 1 {
		fmt.Fprintf(w, "data-parallel: %d replica workers\n", tr.Workers())
	}
	if err := printPlan(w, bench.Cfg, mode, budget); err != nil {
		return err
	}
	prov := bench.Provider(*batches, provSeed)

	var peakStored int64
	for e := 0; e < *epochs; e++ {
		st, err := tr.RunEpoch(ctx, prov, e)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(w, "interrupted; stopping after", e, "epochs")
			break
		}
		if err != nil {
			return err
		}
		line := fmt.Sprintf("epoch %2d  loss %.4f  wall %.2fs", e, st.MeanLoss, st.Wall.Seconds())
		if skipped := st.MeasuredSkipFrac(); skipped > 0 {
			line += fmt.Sprintf("  skipped %.0f%% of BP cells", 100*skipped)
		}
		if st.PruneStats.Elements > 0 {
			line += fmt.Sprintf("  pruned %.0f%% of P1", 100*st.PruneStats.Frac())
		}
		if st.PeakStoredBytes > peakStored {
			peakStored = st.PeakStoredBytes
		}
		fmt.Fprintln(w, line)
	}
	printPeak(w, tr, budget, peakStored)
	if wk != nil && wk.WireBytes() > 0 {
		fmt.Fprintf(w, "gradient sync: %.1f KiB on wire, %.1f KiB dense equivalent (%.1fx)\n",
			float64(wk.WireBytes())/1024, float64(wk.DenseBytes())/1024, wk.Ratio())
	}

	loss, acc, err := etalstm.Evaluate(net, bench.Provider(2, *seed+100))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "eval: loss %.4f accuracy %.1f%%\n", loss, 100*acc)

	if *savePath != "" {
		if err := etalstm.SaveNetwork(*savePath, net); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint written to %s\n", *savePath)
	}

	fp := etalstm.Analyze(full.Cfg, mode).Footprint
	base := etalstm.Analyze(full.Cfg, etalstm.Baseline).Footprint
	fmt.Fprintf(w, "modeled footprint at paper geometry: %.2f GB (baseline %.2f GB, -%.1f%%)\n",
		float64(fp.Total())/1e9, float64(base.Total())/1e9,
		100*(1-float64(fp.Total())/float64(base.Total())))
	return nil
}

// distCompression maps the -dist-keep / -dist-threshold / -dist-warmup
// flags onto sync compression options (nil = dense payloads).
func distCompression(keep, threshold float64, warmup int) *etalstm.CompressOptions {
	if keep <= 0 && threshold <= 0 {
		return nil
	}
	return &etalstm.CompressOptions{KeepFrac: keep, Threshold: float32(threshold), WarmupSteps: warmup}
}

// runCoordinator serves one multi-process merge session and reports its
// outcome. ctx cancellation (Ctrl-C) closes the session.
func runCoordinator(ctx context.Context, w io.Writer, addr string, cfg etalstm.Config, opts etalstm.CoordinatorOptions) error {
	c, err := etalstm.StartCoordinator(addr, cfg, opts)
	if err != nil {
		return err
	}
	quorum := opts.Quorum
	if quorum <= 0 || quorum > opts.ExpectWorkers {
		quorum = opts.ExpectWorkers
	}
	fmt.Fprintf(w, "coordinator on %s: waiting for %d workers (quorum %d)\n", c.Addr(), opts.ExpectWorkers, quorum)
	done := make(chan error, 1)
	go func() { done <- c.Wait() }()
	select {
	case err := <-done:
		fmt.Fprintf(w, "coordinator served %d merged steps (%d stale, %d late contributions folded)\n",
			c.Steps(), c.StaleSteps(), c.LateFolds())
		return err
	case <-ctx.Done():
		c.Close()
		<-done
		return ctx.Err()
	}
}

// serveMetrics exposes the process-wide telemetry registry over HTTP
// for the duration of the run. The bound address is printed (addr may
// end in :0), so scrapers — and the obs smoke test — can find the port.
func serveMetrics(addr string, tracer *rtrace.Tracer, w io.Writer) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", etalstm.MetricsHandler())
	if tracer != nil {
		mux.Handle("GET /debug/traces", tracer.Handler())
		mux.Handle("GET /debug/traces/{id}", tracer.Handler())
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	fmt.Fprintf(w, "metrics: http://%s/metrics\n", ln.Addr())
	return func() { hs.Close() }, nil
}

// parseBytes parses a human byte size: a bare integer is bytes, and
// the suffixes B, KiB/MiB/GiB (binary) and KB/MB/GB (decimal) scale it,
// case-insensitively. Empty means no budget (0).
func parseBytes(s string) (int64, error) {
	l := strings.ToLower(strings.TrimSpace(s))
	if l == "" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(l, "kib"):
		mult, l = 1<<10, l[:len(l)-3]
	case strings.HasSuffix(l, "mib"):
		mult, l = 1<<20, l[:len(l)-3]
	case strings.HasSuffix(l, "gib"):
		mult, l = 1<<30, l[:len(l)-3]
	case strings.HasSuffix(l, "kb"):
		mult, l = 1_000, l[:len(l)-2]
	case strings.HasSuffix(l, "mb"):
		mult, l = 1_000_000, l[:len(l)-2]
	case strings.HasSuffix(l, "gb"):
		mult, l = 1_000_000_000, l[:len(l)-2]
	case strings.HasSuffix(l, "b"):
		l = l[:len(l)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(l), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q (want e.g. 65536, 320KiB, 512MiB)", s)
	}
	return n * mult, nil
}

// printPlan reports what the memory budget buys before training starts:
// the checkpoint placement, its predicted peak and recompute overhead.
// An infeasible budget fails here, with the diagnostic the trainer
// would produce one epoch later.
func printPlan(w io.Writer, cfg etalstm.Config, mode etalstm.Mode, budget int64) error {
	if budget <= 0 {
		return nil
	}
	pl := etalstm.PlanFor(cfg, mode, budget)
	if !pl.Feasible {
		return fmt.Errorf("memory budget %d B is infeasible: even per-step checkpoints need %d B", budget, pl.PredictedPeak)
	}
	fmt.Fprintf(w, "memory budget %d B: %s (full storage would peak at %d B)\n", budget, pl.String(), pl.FullPeak)
	return nil
}

// printPeak reports the measured peak stored bytes against the budget
// and the plan's prediction after a budgeted run.
func printPeak(w io.Writer, tr *etalstm.Trainer, budget, peakStored int64) {
	if budget <= 0 || peakStored <= 0 {
		return
	}
	pl := tr.Plan()
	fmt.Fprintf(w, "measured peak stored %d B (budget %d B, predicted %d B)\n", peakStored, budget, pl.PredictedPeak)
}

func parseMode(s string) (etalstm.Mode, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return etalstm.Baseline, nil
	case "ms1":
		return etalstm.MS1, nil
	case "ms2":
		return etalstm.MS2, nil
	case "combined", "combine-ms":
		return etalstm.Combined, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// profileTo starts CPU profiling (when cpuPath is non-empty) and returns
// a cleanup that stops it and writes a heap profile (when memPath is
// non-empty). Both paths are pprof files for `go tool pprof`.
func profileTo(cpuPath, memPath string) (func(), error) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "etatrain:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable buffers so the profile shows live memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "etatrain:", err)
			}
		}
	}, nil
}

// trainCorpus runs byte-level language modeling over a user text file.
func trainCorpus(ctx context.Context, w io.Writer, path string, mode etalstm.Mode, topts etalstm.TrainerOptions, hidden, seqLen, batch, epochs, batches int, seed uint64) error {
	c, err := etalstm.LoadCorpusFile(path, 32, seed)
	if err != nil {
		return err
	}
	cfg := c.Config(hidden, 2, seqLen, batch)
	fmt.Fprintf(w, "corpus %s: %d bytes; byte-level LM H=%d LN=%d LL=%d B=%d\n",
		path, c.Len(), cfg.Hidden, cfg.Layers, cfg.SeqLen, cfg.Batch)
	prov, err := c.Provider(cfg, batches, seed)
	if err != nil {
		return err
	}
	net, err := etalstm.NewNetwork(cfg, seed)
	if err != nil {
		return err
	}
	if err := printPlan(w, cfg, mode, topts.MemoryBudget); err != nil {
		return err
	}
	tr := etalstm.NewTrainer(net, mode, topts)
	var peakStored int64
	for e := 0; e < epochs; e++ {
		st, err := tr.RunEpoch(ctx, prov, e)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(w, "interrupted; stopping after", e, "epochs")
			return nil
		}
		if err != nil {
			return err
		}
		if st.PeakStoredBytes > peakStored {
			peakStored = st.PeakStoredBytes
		}
		fmt.Fprintf(w, "epoch %2d  loss %.4f  perplexity %.1f\n", e, st.MeanLoss, math.Exp(st.MeanLoss))
	}
	printPeak(w, tr, topts.MemoryBudget, peakStored)
	return nil
}
