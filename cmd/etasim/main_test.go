package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBenchmarkGeometry(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "BABI"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"model BABI", "accelerator:", "scenario", "Baseline", "EtaLSTM"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCustomGeometry(t *testing.T) {
	for _, loss := range []string{"single", "per-ts", "regression"} {
		loss := loss
		t.Run(loss, func(t *testing.T) {
			t.Parallel()
			var out bytes.Buffer
			args := []string{"-hidden", "256", "-layers", "2", "-seq", "10", "-batch", "8", "-loss", loss}
			if err := run(args, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "model custom") {
				t.Errorf("no custom-model header:\n%s", out.String())
			}
		})
	}
}

func TestRunFlagAndArgumentErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-bench", "NOPE"},
		{"-loss", "cosmic"},
		{"-hidden", "0"}, // invalid geometry
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
