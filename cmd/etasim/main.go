// Command etasim runs the accelerator/GPU cost models over the design
// scenarios for a benchmark or a custom model geometry, printing
// per-step latency, energy and the Fig. 15-style normalizations.
//
// Usage:
//
//	etasim -bench BABI
//	etasim -hidden 2048 -layers 4 -seq 100 -loss per-ts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"etalstm"
	"etalstm/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etasim:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, output goes to w, failures return instead of exiting.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("etasim", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "", "Table I benchmark name (overrides the geometry flags)")
		hidden    = fs.Int("hidden", 1024, "hidden size")
		layers    = fs.Int("layers", 3, "layer number")
		seq       = fs.Int("seq", 100, "layer length")
		batch     = fs.Int("batch", 128, "batch size")
		lossKind  = fs.String("loss", "per-ts", "single | per-ts | regression")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obs.RegisterBuildInfo(obs.Default)

	var cfg etalstm.Config
	label := "custom"
	if *benchName != "" {
		bench, err := etalstm.BenchmarkByName(*benchName)
		if err != nil {
			return err
		}
		cfg = bench.Cfg
		label = bench.Name
	} else {
		loss := etalstm.PerTimestampLoss
		switch *lossKind {
		case "single":
			loss = etalstm.SingleLoss
		case "per-ts":
		case "regression":
			loss = etalstm.RegressionLoss
		default:
			return fmt.Errorf("unknown loss kind %q", *lossKind)
		}
		cfg = etalstm.Config{
			InputSize: 512, Hidden: *hidden, Layers: *layers, SeqLen: *seq,
			Batch: *batch, OutSize: 1000, Loss: loss,
		}
		if loss == etalstm.RegressionLoss {
			cfg.InputSize, cfg.OutSize = 8, 4
		}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	fmt.Fprintf(w, "model %s: H=%d LN=%d LL=%d B=%d (%v)\n",
		label, cfg.Hidden, cfg.Layers, cfg.SeqLen, cfg.Batch, cfg.Loss)
	hw := etalstm.PaperAccelerator()
	fmt.Fprintf(w, "accelerator: %d boards x %d channels x %d PEs @ %.0f MHz, %.0f GB/s HBM\n\n",
		hw.Boards, hw.ChannelsPerBoard, hw.PEsPerChannel, hw.ClockHz/1e6, hw.HBMBytesPerSec/1e9)

	fmt.Fprintf(w, "%-12s %12s %10s %10s %9s %9s\n",
		"scenario", "step (ms)", "energy (J)", "power (W)", "speedup", "energy x")
	for _, c := range etalstm.CompareScenarios(cfg) {
		if c.OOM {
			fmt.Fprintf(w, "%-12s %12s\n", c.Scenario, "OOM")
			continue
		}
		fmt.Fprintf(w, "%-12s %12.2f %10.2f %10.1f %8.2fx %9.2f\n",
			c.Scenario, 1000*c.StepSeconds, c.EnergyJ, c.PowerW, c.Speedup, c.NormalizedEnergy)
	}
	return nil
}
