package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"etalstm"
	"etalstm/internal/fleet"
	"etalstm/internal/serve"
)

// syncBuffer lets the test poll run's output while run is still
// writing from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func testConfig() etalstm.Config {
	return etalstm.Config{InputSize: 3, Hidden: 4, Layers: 2, SeqLen: 6,
		Batch: 2, OutSize: 3, Loss: etalstm.SingleLoss}
}

func saveCheckpoint(t *testing.T, dir string, seed uint64) string {
	t.Helper()
	net, err := etalstm.NewNetwork(testConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "net-"+t.Name()+"-"+time.Now().Format("150405.000")+".ckpt")
	if err := etalstm.SaveNetwork(path, net); err != nil {
		t.Fatal(err)
	}
	return path
}

// replica stands up one in-process etaserve replica with the admin
// endpoint mounted (the fleet swap path needs it).
func replica(t *testing.T, ckpt string) (*serve.Server, *httptest.Server) {
	t.Helper()
	net, err := etalstm.LoadNetwork(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	s := etalstm.NewServer(net, etalstm.ServeOptions{
		MaxBatch: 4, Window: time.Millisecond, EnableAdmin: true,
	})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, hs
}

// waitForAddr polls run's output for the "listening on" line.
func waitForAddr(t *testing.T, out *syncBuffer, runErr <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, "listening on "); i >= 0 {
			rest := s[i+len("listening on "):]
			if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
				return strings.TrimSpace(rest[:nl])
			}
		}
		select {
		case err := <-runErr:
			t.Fatalf("router exited before listening: %v\noutput:\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("router never reported its address; output:\n%s", out.String())
	return ""
}

func fleetStatus(t *testing.T, routerURL string) fleet.FleetStatus {
	t.Helper()
	resp, err := http.Get(routerURL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st fleet.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFleetSmoke is the end-to-end fleet check behind `make
// fleet-smoke`: three replicas behind the real etarouter binary path,
// a Zipf-skewed load burst, one replica killed mid-run (its ejection
// must settle with zero surfaced errors), and a checkpoint hot-swap
// rolled across the survivors under load with zero dropped requests.
func TestFleetSmoke(t *testing.T) {
	dir := t.TempDir()
	ckpt1 := saveCheckpoint(t, dir, 7)

	sA, hsA := replica(t, ckpt1)
	_, hsB := replica(t, ckpt1)
	_, hsC := replica(t, ckpt1)

	out := &syncBuffer{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-replicas", hsA.URL + "," + hsB.URL + "," + hsC.URL,
			"-addr", "127.0.0.1:0",
			"-probe-interval", "25ms",
			"-eject-after", "2",
		}, out)
	}()
	routerURL := waitForAddr(t, out, runErr)

	// Phase 1: skewed load over the full fleet through the loadgen seam.
	lgOut := &syncBuffer{}
	if err := run(ctx, []string{"-loadgen", "-target", routerURL,
		"-conc", "8", "-n", "120", "-seq", "2",
		"-sessions", "64", "-zipf", "1.1", "-session-frac", "0.5"}, lgOut); err != nil {
		t.Fatalf("phase-1 loadgen: %v", err)
	}
	if s := lgOut.String(); !strings.Contains(s, "errors=0") {
		t.Fatalf("phase-1 burst saw errors: %s", s)
	}
	if st := fleetStatus(t, routerURL); st.RingMembers != 3 {
		t.Fatalf("ring members = %d before kill, want 3", st.RingMembers)
	}

	// Kill replica A outright — no graceful anything.
	hsA.Close()
	{
		cctx, ccancel := context.WithTimeout(context.Background(), 5*time.Second)
		sA.Close(cctx)
		ccancel()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := fleetStatus(t, routerURL); st.RingMembers == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ejection never settled: %+v", fleetStatus(t, routerURL))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Phase 2: after ejection settles, a fresh burst must surface zero
	// errors — the dead replica's key range belongs to survivors now.
	before := fleetStatus(t, routerURL)
	lgOut2 := &syncBuffer{}
	if err := run(ctx, []string{"-loadgen", "-target", routerURL,
		"-conc", "8", "-n", "120", "-seq", "2",
		"-sessions", "64", "-zipf", "1.1", "-session-frac", "0.5"}, lgOut2); err != nil {
		t.Fatalf("phase-2 loadgen: %v", err)
	}
	if s := lgOut2.String(); !strings.Contains(s, "errors=0") {
		t.Fatalf("phase-2 burst saw errors after ejection settled: %s", s)
	}
	after := fleetStatus(t, routerURL)
	if after.Errors != before.Errors {
		t.Fatalf("router surfaced %d errors during phase 2", after.Errors-before.Errors)
	}

	// Phase 3: hot-swap a new checkpoint across the survivors while a
	// background client keeps hitting the fleet — zero dropped requests.
	ckpt2 := saveCheckpoint(t, dir, 99)
	var dropped, served int32
	var wg sync.WaitGroup
	stopCh := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{}
		for i := 0; ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			body := `{"inputs":[[0.1,0.2,0.3]],"session":"swapload"}`
			resp, err := client.Post(routerURL+"/v1/infer", "application/json", strings.NewReader(body))
			if err != nil {
				dropped++
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				dropped++
			} else {
				served++
			}
		}
	}()
	swapOut := &syncBuffer{}
	if err := run(ctx, []string{"-swap", ckpt2, "-target", routerURL}, swapOut); err != nil {
		t.Fatalf("swap: %v\noutput:\n%s", err, swapOut.String())
	}
	close(stopCh)
	wg.Wait()
	if dropped != 0 {
		t.Fatalf("%d requests dropped during the swap (%d served)", dropped, served)
	}
	if served == 0 {
		t.Fatal("no traffic flowed during the swap")
	}
	if s := swapOut.String(); !strings.Contains(s, "generation 2") {
		t.Fatalf("swap output missing generation line:\n%s", s)
	}
	if st := fleetStatus(t, routerURL); st.SwapGeneration != 1 {
		t.Fatalf("fleet swap generation = %d, want 1", st.SwapGeneration)
	}

	// Drain the router and check its exit report.
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("router exit: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "drained:") {
		t.Fatalf("router exit report missing:\n%s", s)
	}
}
