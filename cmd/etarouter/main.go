// Command etarouter fronts a fleet of etaserve replicas: it routes
// sessions to replicas by consistent hashing (membership churn remaps
// only ~1/N of sessions), spreads stateless requests by body digest
// with a load tiebreak, ejects unhealthy replicas with hysteresis and
// drains their sessions to successors, and rolls checkpoint hot-swaps
// across the fleet one replica at a time (see DESIGN.md §14).
//
// Usage:
//
//	etaserve -ckpt net.ckpt -admin -addr :8081 &
//	etaserve -ckpt net.ckpt -admin -addr :8082 &
//	etarouter -replicas http://localhost:8081,http://localhost:8082 -addr :8080
//
// Roll a new checkpoint across a running fleet:
//
//	etarouter -swap next.ckpt -target http://localhost:8080
//
// Benchmark the fleet with Zipf-skewed session traffic:
//
//	etarouter -loadgen -target http://localhost:8080 -conc 64 -n 2048 -sessions 512 -zipf 1.1 -session-frac 0.15
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"etalstm/internal/fleet"
	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
	"etalstm/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etarouter:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, output goes to w, failures return instead of exiting.
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("etarouter", flag.ContinueOnError)
	var (
		replicas = fs.String("replicas", "", "comma-separated etaserve base URLs (required to serve)")
		addr     = fs.String("addr", "127.0.0.1:8090", "listen address")
		vnodes   = fs.Int("vnodes", 0, "virtual nodes per replica (0 = 128)")
		probeInt = fs.Duration("probe-interval", 0, "health probe period (0 = 1s)")
		probeTO  = fs.Duration("probe-timeout", 0, "per-probe deadline (0 = 500ms)")
		eject    = fs.Int("eject-after", 0, "consecutive probe failures before ejection (0 = 3)")
		recover_ = fs.Int("recover-after", 0, "consecutive probe successes before re-admission (0 = 2)")
		timeout  = fs.Duration("timeout", 0, "per-forwarded-request deadline (0 = 10s)")
		traceOn  = fs.Bool("trace", true, "record routing traces in the flight recorder at GET /debug/traces (/debug/traces/{id} merges replica spans); SIGQUIT dumps it to stderr")

		swap   = fs.String("swap", "", "roll this checkpoint across the fleet and exit")
		target = fs.String("target", "", "running router base URL (for -swap and -loadgen)")

		loadgen    = fs.Bool("loadgen", false, "generate load against -target instead of routing")
		conc       = fs.Int("conc", 0, "loadgen: concurrent clients (0 = 32)")
		n          = fs.Int("n", 0, "loadgen: total requests (0 = 512)")
		seq        = fs.Int("seq", 0, "loadgen: timesteps per request (0 = 8)")
		sessions   = fs.Int("sessions", 0, "loadgen: spread requests over this many session ids")
		zipf       = fs.Float64("zipf", 0, "loadgen: Zipf skew exponent over session ranks (0 = uniform round-robin)")
		sessFrac   = fs.Float64("session-frac", 0, "loadgen: fraction of requests carrying a session id (0 = 1.0)")
		seed       = fs.Uint64("seed", 1, "loadgen: input seed")
		traceEvery = fs.Int("trace-every", 0, "loadgen: mint a sampled traceparent on every Nth request; the report lists sample trace ids resolvable at the target's /debug/traces (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *loadgen {
		if *target == "" {
			return fmt.Errorf("-loadgen requires -target")
		}
		rep, err := serve.RunLoad(ctx, serve.LoadOptions{
			Target: *target, Concurrency: *conc, Requests: *n, SeqLen: *seq,
			Sessions: *sessions, ZipfS: *zipf, SessionFrac: *sessFrac, Seed: *seed,
			TraceEvery: *traceEvery,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
		return nil
	}

	if *swap != "" {
		return runSwap(ctx, w, *swap, *target, *replicas, *timeout)
	}

	if *replicas == "" {
		return fmt.Errorf("-replicas is required (or use -swap / -loadgen)")
	}
	fopts := fleet.Options{
		Replicas:       splitReplicas(*replicas),
		VNodes:         *vnodes,
		ProbeInterval:  *probeInt,
		ProbeTimeout:   *probeTO,
		EjectAfter:     *eject,
		RecoverAfter:   *recover_,
		RequestTimeout: *timeout,
		Log:            obs.NewLogger(os.Stderr),
	}
	if *traceOn {
		fopts.Tracer = rtrace.New(rtrace.Options{Process: "etarouter"})
		defer fopts.Tracer.DumpOnSignal(os.Stderr)()
	}
	rt, err := fleet.New(fopts)
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "routing %d replicas: %s\n", len(splitReplicas(*replicas)), *replicas)
	fmt.Fprintf(w, "listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: rt.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return err
		}
		<-done
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			return err
		}
	}
	st := rt.Status()
	fmt.Fprintf(w, "drained: %d requests, %d errors, %d failovers, %d ejections, %d sessions moved (%d lost)\n",
		st.Requests, st.Errors, st.Retries, st.Ejections, st.SessionsMoved, st.SessionsLost)
	return nil
}

// runSwap rolls a checkpoint across the fleet: through a running
// router's /admin/swap when -target is set, or by standing up an
// ephemeral (prober-less) router over -replicas when not.
func runSwap(ctx context.Context, w io.Writer, ckpt, target, replicas string, timeout time.Duration) error {
	var rep fleet.SwapReport
	switch {
	case target != "":
		body, err := json.Marshal(map[string]string{"path": ckpt})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/admin/swap", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("swap failed: HTTP %d: %s", resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("bad swap report: %w", err)
		}
	case replicas != "":
		rt, err := fleet.New(fleet.Options{
			Replicas:       splitReplicas(replicas),
			ProbeInterval:  -1, // one-shot roll: no background prober
			RequestTimeout: timeout,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		rep, err = rt.Swap(ctx, ckpt)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("-swap requires -target (running router) or -replicas (direct roll)")
	}
	for _, r := range rep.Rolled {
		fmt.Fprintf(w, "swapped %s -> generation %d (digest %.12s)\n", r.URL, r.Generation, r.Digest)
	}
	fmt.Fprintf(w, "fleet on digest %s (%d replicas)\n", rep.Digest, len(rep.Rolled))
	return nil
}

func splitReplicas(s string) []string {
	var out []string
	for _, r := range strings.Split(s, ",") {
		if r = strings.TrimSpace(r); r != "" {
			out = append(out, r)
		}
	}
	return out
}
