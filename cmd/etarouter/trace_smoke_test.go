package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"etalstm"
	"etalstm/internal/rtrace"
)

// tracedReplica is replica() with a flight recorder attached, so the
// router's /debug/traces/{id} fan-out has replica spans to merge.
func tracedReplica(t *testing.T, ckpt, process string) *httptest.Server {
	t.Helper()
	net, err := etalstm.LoadNetwork(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	s := etalstm.NewServer(net, etalstm.ServeOptions{
		MaxBatch: 4, Window: time.Millisecond,
		Tracer: rtrace.New(rtrace.Options{Process: process}),
	})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return hs
}

// TestTraceSmoke is the end-to-end tracing check behind `make
// trace-smoke`: two traced replicas behind the real etarouter binary
// path, a loadgen burst minting traceparents, one of the minted ids
// resolved at the router into a cross-process span tree (router.request
// → serve.request → serve.sweep → FW phase), and a SIGQUIT dumping the
// router's flight recorder to stderr.
func TestTraceSmoke(t *testing.T) {
	dir := t.TempDir()
	ckpt := saveCheckpoint(t, dir, 7)
	hsA := tracedReplica(t, ckpt, "replica-a")
	hsB := tracedReplica(t, ckpt, "replica-b")

	// The router's -trace path wires its SIGQUIT dump to os.Stderr at
	// startup; swap in a pipe first so the dump is assertable.
	origStderr := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	defer func() { os.Stderr = origStderr }()
	stderrOut := &syncBuffer{}
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := pr.Read(buf)
			if n > 0 {
				stderrOut.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()

	out := &syncBuffer{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-replicas", hsA.URL + "," + hsB.URL,
			"-addr", "127.0.0.1:0",
			"-probe-interval", "25ms",
		}, out)
	}()
	routerURL := waitForAddr(t, out, runErr)

	// A burst that mints a sampled traceparent on every 3rd request and
	// reports the sample ids.
	lgOut := &syncBuffer{}
	if err := run(ctx, []string{"-loadgen", "-target", routerURL,
		"-conc", "4", "-n", "48", "-seq", "2", "-trace-every", "3"}, lgOut); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	lg := lgOut.String()
	if !strings.Contains(lg, "errors=0") {
		t.Fatalf("traced burst saw errors: %s", lg)
	}
	i := strings.Index(lg, "traces=")
	if i < 0 {
		t.Fatalf("loadgen report lists no sample traces: %s", lg)
	}
	ids := strings.Fields(lg[i+len("traces="):])[0]
	tid := strings.Split(ids, ",")[0]

	// That id must resolve at the router into one cross-process tree.
	resp, err := http.Get(routerURL + "/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: HTTP %d", tid, resp.StatusCode)
	}
	var tres rtrace.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tres); err != nil {
		t.Fatal(err)
	}
	var chain func(nodes []*rtrace.Node, names []string) bool
	chain = func(nodes []*rtrace.Node, names []string) bool {
		if len(names) == 0 {
			return true
		}
		for _, n := range nodes {
			if n.Name == names[0] && chain(n.Children, names[1:]) {
				return true
			}
			if chain(n.Children, names) {
				return true
			}
		}
		return false
	}
	if !chain(tres.Tree, []string{"router.request", "serve.request", "serve.sweep", "FW"}) {
		enc, _ := json.MarshalIndent(tres.Tree, "", "  ")
		t.Fatalf("trace %s lacks router.request → serve.request → serve.sweep → FW:\n%s", tid, enc)
	}

	// SIGQUIT dumps the router's flight recorder instead of killing the
	// process (rtrace's handler overrides the runtime default).
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(stderrOut.String(), "rtrace flight recorder") {
		if time.Now().After(deadline) {
			t.Fatalf("no flight-recorder dump after SIGQUIT; stderr:\n%s", stderrOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(stderrOut.String(), "router.request") {
		t.Fatalf("SIGQUIT dump has no router.request spans:\n%s", stderrOut.String())
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("router exit: %v", err)
	}
	pw.Close()
}
