package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"etalstm"
)

// syncBuffer lets the test poll run's output while run is still
// writing from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// saveTestCheckpoint writes a tiny untrained network for the server to
// load — serving doesn't care whether the weights converged.
func saveTestCheckpoint(t *testing.T) string {
	t.Helper()
	cfg := etalstm.Config{InputSize: 3, Hidden: 4, Layers: 2, SeqLen: 6,
		Batch: 2, OutSize: 3, Loss: etalstm.SingleLoss}
	net, err := etalstm.NewNetwork(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.ckpt")
	if err := etalstm.SaveNetwork(path, net); err != nil {
		t.Fatal(err)
	}
	return path
}

// waitForAddr polls the server's output for the "listening on" line and
// returns the bound base URL.
func waitForAddr(t *testing.T, out *syncBuffer, serveErr <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, "listening on "); i >= 0 {
			rest := s[i+len("listening on "):]
			if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
				return strings.TrimSpace(rest[:nl])
			}
		}
		select {
		case err := <-serveErr:
			t.Fatalf("server exited before listening: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("server never reported its address:\n%s", out.String())
	return ""
}

// TestServeSmoke is the end-to-end path of the serve-smoke Makefile
// target: save a checkpoint, serve it on an ephemeral port, fire a
// loadgen burst through the same binary's -loadgen mode, then cancel
// and verify a clean drain with every request answered.
func TestServeSmoke(t *testing.T) {
	ckpt := saveTestCheckpoint(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run(ctx, []string{
			"-ckpt", ckpt, "-addr", "127.0.0.1:0",
			"-max-batch", "8", "-window", "1ms",
		}, &out)
	}()
	target := waitForAddr(t, &out, serveErr)

	var loadOut bytes.Buffer
	if err := run(context.Background(), []string{
		"-loadgen", "-target", target, "-conc", "8", "-n", "64", "-seq", "4",
		"-sessions", "2",
	}, &loadOut); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	rep := loadOut.String()
	if !strings.Contains(rep, "ok=64") || !strings.Contains(rep, "errors=0") {
		t.Fatalf("loadgen report %q, want 64 ok / 0 errors", strings.TrimSpace(rep))
	}

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("server did not drain:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "drained:") || !strings.Contains(s, "64 completed") {
		t.Fatalf("no drain summary with 64 completed:\n%s", s)
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{},                          // -ckpt required
		{"-ckpt", "absent.ckpt"},    // missing checkpoint file
		{"-ckpt", "x", "-addr", ""}, // still fails at load, before listen
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestLoadgenUnreachableTarget(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-loadgen", "-target", "http://127.0.0.1:1", "-n", "1",
	}, &out)
	if err == nil {
		t.Fatal("loadgen against a dead target succeeded, want error")
	}
}
