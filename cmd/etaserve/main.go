// Command etaserve serves a trained checkpoint for inference over
// HTTP+JSON with dynamic micro-batching: concurrent requests coalesce
// into dense batched sweeps through a worker pool sharing the
// checkpoint's weights read-only (see DESIGN.md §9).
//
// Usage:
//
//	etatrain -bench TREC-10 -epochs 4 -save net.ckpt
//	etaserve -ckpt net.ckpt -addr :8080
//	curl -d '{"inputs": [[0.1, ...]]}' http://localhost:8080/v1/infer
//
// The embedded load generator drives a running server with synthetic
// traffic and reports throughput and latency quantiles:
//
//	etaserve -loadgen -target http://localhost:8080 -conc 64 -n 2048
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"etalstm"
	"etalstm/internal/obs"
	"etalstm/internal/rtrace"
	"etalstm/internal/serve"
)

func main() {
	// SIGINT/SIGTERM trigger a graceful drain: stop accepting, finish
	// every admitted request, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "etaserve:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, output goes to w, failures return instead of exiting.
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("etaserve", flag.ContinueOnError)
	var (
		ckpt     = fs.String("ckpt", "", "checkpoint file to serve (required unless -loadgen)")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		window   = fs.Duration("window", 0, "micro-batch flush window (0 = 2ms)")
		maxBatch = fs.Int("max-batch", 0, "micro-batch flush size (0 = 32)")
		queue    = fs.Int("queue", 0, "admission queue capacity (0 = 8x max-batch)")
		workers  = fs.Int("workers", 0, "sweep worker pool size (0 = derive from CPU count)")
		ttl      = fs.Duration("session-ttl", 0, "idle session eviction age (0 = 5m)")
		timeout  = fs.Duration("timeout", 0, "per-request deadline (0 = 5s)")
		pprofOn  = fs.Bool("pprof", false, "mount /debug/pprof/ profiling handlers (exposes internals; keep off on open ports)")
		adminOn  = fs.Bool("admin", false, "mount POST /v1/admin/reload for checkpoint hot-swap (lets callers name server-side paths; trusted ports only)")
		traceOn  = fs.Bool("trace", true, "record request traces in the flight recorder at GET /debug/traces; SIGQUIT dumps it to stderr")

		loadgen    = fs.Bool("loadgen", false, "generate load against -target instead of serving")
		target     = fs.String("target", "http://127.0.0.1:8080", "loadgen: server base URL")
		conc       = fs.Int("conc", 0, "loadgen: concurrent clients (0 = 32)")
		n          = fs.Int("n", 0, "loadgen: total requests (0 = 512)")
		seq        = fs.Int("seq", 0, "loadgen: timesteps per request (0 = 8)")
		sessions   = fs.Int("sessions", 0, "loadgen: spread requests over this many session ids")
		zipf       = fs.Float64("zipf", 0, "loadgen: Zipf skew exponent over session ranks (0 = uniform round-robin)")
		sessFrac   = fs.Float64("session-frac", 0, "loadgen: fraction of requests carrying a session id (0 = 1.0)")
		seed       = fs.Uint64("seed", 1, "loadgen: input seed")
		traceEvery = fs.Int("trace-every", 0, "loadgen: mint a sampled traceparent on every Nth request; the report lists sample trace ids resolvable at the target's /debug/traces (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *loadgen {
		rep, err := serve.RunLoad(ctx, serve.LoadOptions{
			Target: *target, Concurrency: *conc, Requests: *n,
			SeqLen: *seq, Sessions: *sessions, ZipfS: *zipf,
			SessionFrac: *sessFrac, Seed: *seed, TraceEvery: *traceEvery,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep)
		return nil
	}

	if *ckpt == "" {
		return fmt.Errorf("-ckpt is required (or use -loadgen)")
	}
	net_, err := etalstm.LoadNetwork(*ckpt)
	if err != nil {
		return err
	}
	cfg := net_.Cfg
	sopts := etalstm.ServeOptions{
		MaxBatch: *maxBatch, Window: *window, QueueCap: *queue, Workers: *workers,
		SessionTTL: *ttl, RequestTimeout: *timeout, EnablePprof: *pprofOn,
		EnableAdmin: *adminOn, Log: obs.NewLogger(os.Stderr),
	}
	if *traceOn {
		sopts.Tracer = rtrace.New(rtrace.Options{Process: "etaserve"})
		defer sopts.Tracer.DumpOnSignal(os.Stderr)()
	}
	s := etalstm.NewServer(net_, sopts)
	if *pprofOn {
		fmt.Fprintln(w, "pprof enabled under /debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serving %s (H=%d LN=%d out=%d, %v)\n",
		*ckpt, cfg.Hidden, cfg.Layers, cfg.OutSize, cfg.Loss)
	fmt.Fprintf(w, "listening on http://%s\n", ln.Addr())

	err = s.Serve(ctx, ln)
	st := s.Stats()
	fmt.Fprintf(w, "drained: %d completed, %d rejected, %d failed, mean batch %.1f, p50 %.2fms p99 %.2fms\n",
		st.Completed, st.Rejected, st.Failed, st.MeanBatch, st.LatencyP50Ms, st.LatencyP99Ms)
	return err
}
