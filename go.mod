module etalstm

go 1.22
